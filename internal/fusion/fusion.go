// Package fusion defines partial fusion plans — the sub-DAGs a plan
// generator carves out of a query DAG to run as single fused operators — and
// the structural analyses shared by the planners (CFG, GEN), the cost model
// and the executor: termination-operator rules, the L/R/O/MM space tree of
// the paper's 3-dimensional model (Section 3.1), fusion-type classification
// and outer-fusion (sparsity-exploitation) mask detection.
package fusion

import (
	"fmt"
	"sort"

	"fuseme/internal/dag"
	"fuseme/internal/matrix"
)

// Type classifies a partial fusion plan per Section 2.1 of the paper.
type Type int

// Fusion types.
const (
	Cell     Type = iota // consecutive element-wise operators only
	Row                  // contains matrix multiplication / row reuse
	Outer                // matmul fused with a sparse element-wise multiply
	MultiAgg             // aggregation root(s)
)

// String names the fusion type.
func (t Type) String() string {
	switch t {
	case Cell:
		return "Cell"
	case Row:
		return "Row"
	case Outer:
		return "Outer"
	case MultiAgg:
		return "Multi-aggregation"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// OuterSparsityThreshold is the maximum estimated density of an input for it
// to act as the sparse driver of an outer-fusion (masked) evaluation.
const OuterSparsityThreshold = 0.1

// Plan is a partial fusion plan: a connected sub-DAG executed as one fused
// operator. Within a plan every non-root member has exactly one consumer
// (multi-consumer operators are termination operators and cannot be fused),
// so the member set forms a tree rooted at Root.
type Plan struct {
	Root    *dag.Node
	Members map[int]*dag.Node // keyed by node ID; includes Root
	MainMM  *dag.Node         // designated main matrix multiplication; nil if none

	spaces *SpaceTree // lazily built
}

// NewPlan builds a plan from a member set and validates its tree structure.
func NewPlan(root *dag.Node, members map[int]*dag.Node) (*Plan, error) {
	p := &Plan{Root: root, Members: members}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.MainMM = ChooseMainMM(p)
	return p, nil
}

// Contains reports membership of n in the plan.
func (p *Plan) Contains(n *dag.Node) bool {
	_, ok := p.Members[n.ID]
	return ok
}

// Size returns the number of member operators.
func (p *Plan) Size() int { return len(p.Members) }

// MemberIDs returns member node IDs in ascending order.
func (p *Plan) MemberIDs() []int {
	ids := make([]int, 0, len(p.Members))
	for id := range p.Members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ExternalInputs returns the distinct nodes outside the plan that feed plan
// members, in ascending ID order. These are the matrices the fused operator
// consolidates to its tasks.
func (p *Plan) ExternalInputs() []*dag.Node {
	seen := map[int]*dag.Node{}
	for _, n := range p.Members {
		for _, in := range n.Inputs {
			if !p.Contains(in) {
				seen[in.ID] = in
			}
		}
	}
	out := make([]*dag.Node, 0, len(seen))
	for _, n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MatMuls returns all member matrix multiplications in ascending ID order.
func (p *Plan) MatMuls() []*dag.Node {
	var out []*dag.Node
	for _, id := range p.MemberIDs() {
		if p.Members[id].Op == dag.OpMatMul {
			out = append(out, p.Members[id])
		}
	}
	return out
}

// Validate checks the structural invariants of a partial fusion plan:
// the member set is a tree rooted at Root (every non-root member has exactly
// one consumer, which is also a member), members are operators (not leaves),
// and aggregations appear only at the root.
func (p *Plan) Validate() error {
	if p.Root == nil || len(p.Members) == 0 {
		return fmt.Errorf("fusion: empty plan")
	}
	if !p.Contains(p.Root) {
		return fmt.Errorf("fusion: root %d not a member", p.Root.ID)
	}
	for _, n := range p.Members {
		if n.IsLeaf() {
			return fmt.Errorf("fusion: leaf node %d (%s) cannot be a plan member", n.ID, n.Label())
		}
		if n.Op == dag.OpUnaryAgg && n != p.Root {
			return fmt.Errorf("fusion: aggregation %d (%s) must be the plan root", n.ID, n.Label())
		}
		if n == p.Root {
			continue
		}
		consumersInPlan := 0
		for _, c := range n.Consumers() {
			if p.Contains(c) {
				consumersInPlan++
			}
		}
		if consumersInPlan != 1 || len(n.Consumers()) != 1 {
			return fmt.Errorf("fusion: member %d (%s) has %d consumers (%d in plan); only the root may fan out",
				n.ID, n.Label(), len(n.Consumers()), consumersInPlan)
		}
	}
	// Connectivity: everything must be reachable from the root within the
	// member set.
	reached := map[int]bool{}
	var walk func(n *dag.Node)
	walk = func(n *dag.Node) {
		if !p.Contains(n) || reached[n.ID] {
			return
		}
		reached[n.ID] = true
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(p.Root)
	if len(reached) != len(p.Members) {
		return fmt.Errorf("fusion: plan is not connected (%d of %d reachable from root)", len(reached), len(p.Members))
	}
	return nil
}

// ChooseMainMM returns the plan's main matrix multiplication: among the
// multiplications reachable from the root without crossing another
// multiplication (so the root stays in the main multiplication's output
// plane, as the executor's O-space partitioning requires), the one with the
// largest voxel count I*J*K (Algorithm 3, line 3). Returns nil if the plan
// has none.
func ChooseMainMM(p *Plan) *dag.Node {
	var best *dag.Node
	var bestVoxels int64
	var walk func(n *dag.Node)
	walk = func(n *dag.Node) {
		if !p.Contains(n) {
			return
		}
		if n.Op == dag.OpMatMul {
			v := int64(n.Rows) * int64(n.Cols) * int64(n.Inputs[0].Cols)
			if best == nil || v > bestVoxels {
				best, bestVoxels = n, v
			}
			return // deeper multiplications become nested spaces
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(p.Root)
	return best
}

// Classify returns the fusion type of the plan (informational; used by plan
// displays and by the GEN baseline's template matching).
func (p *Plan) Classify() Type {
	if p.Root.Op == dag.OpUnaryAgg {
		return MultiAgg
	}
	if p.MainMM == nil {
		return Cell
	}
	if m := FindOuterMask(p); m != nil {
		return Outer
	}
	return Row
}

// IsTermination reports whether n is a termination operator with respect to
// the per-task memory budget taskMem (Section 4.1): either it has more than
// one consumer (its output is a materialisation point), or it is a unary
// aggregation whose input is too large to aggregate without a shuffle.
func IsTermination(n *dag.Node, taskMem int64) bool {
	if n.NumConsumers() > 1 {
		return true
	}
	if n.Op == dag.OpUnaryAgg && n.Inputs[0].EstSizeBytes() > taskMem {
		return true
	}
	return false
}

// OuterMask describes a detected outer-fusion opportunity: Mul is a member
// element-wise multiplication whose Driver operand is a sparse external
// input and whose other operand subtree reaches the plan's main matrix
// multiplication through element-wise operators only. The executor evaluates
// that subtree in masked form over Driver's non-zero pattern.
type OuterMask struct {
	Mul    *dag.Node // the b(*) node
	Driver *dag.Node // the sparse external operand
	Inner  *dag.Node // the operand subtree evaluated under the mask
}

// FindOuterMask detects the outer-fusion pattern in p, returning nil when
// none applies. Requirements: p has a main matmul; some member b(*) has one
// sparse driver operand (estimated density below OuterSparsityThreshold)
// shaped like the multiplication output — either an external input or a
// member subtree that does not reach the main multiplication, such as the
// (X != 0) pattern of the ALS weighted squared loss; the other operand
// reaches MainMM through member unary/binary operators only (no transpose,
// no nested matmul on the path).
func FindOuterMask(p *Plan) *OuterMask {
	if p.MainMM == nil {
		return nil
	}
	for _, id := range p.MemberIDs() {
		n := p.Members[id]
		if n.Op != dag.OpBinary || n.BinOp != matrix.Mul {
			continue
		}
		for i, cand := range n.Inputs {
			other := n.Inputs[1-i]
			if cand.Sparsity >= OuterSparsityThreshold {
				continue
			}
			if cand.Rows != n.Rows || cand.Cols != n.Cols {
				continue
			}
			if p.Contains(cand) && subtreeContainsMM(p, cand) {
				continue // both sides reach the multiplication
			}
			if p.Contains(other) && reachesMMElementwise(p, other) {
				return &OuterMask{Mul: n, Driver: cand, Inner: other}
			}
		}
	}
	return nil
}

// subtreeContainsMM reports whether the member subtree rooted at n contains
// the plan's main matmul through any operator kind.
func subtreeContainsMM(p *Plan, n *dag.Node) bool {
	if n == p.MainMM {
		return true
	}
	if !p.Contains(n) {
		return false
	}
	for _, in := range n.Inputs {
		if subtreeContainsMM(p, in) {
			return true
		}
	}
	return false
}

// reachesMMElementwise reports whether the member subtree rooted at n
// contains the plan's main matmul, reachable through unary/binary member
// nodes only.
func reachesMMElementwise(p *Plan, n *dag.Node) bool {
	if n == p.MainMM {
		return true
	}
	if !p.Contains(n) {
		return false
	}
	switch n.Op {
	case dag.OpUnary, dag.OpBinary:
		for _, in := range n.Inputs {
			if reachesMMElementwise(p, in) {
				return true
			}
		}
	}
	return false
}

// String renders a compact description, e.g.
// "Plan{root=b(*), 5 ops, type=Outer, mm=ba(x)#3}".
func (p *Plan) String() string {
	mm := "none"
	if p.MainMM != nil {
		mm = fmt.Sprintf("%s#%d", p.MainMM.Label(), p.MainMM.ID)
	}
	return fmt.Sprintf("Plan{root=%s#%d, %d ops, type=%s, mm=%s}",
		p.Root.Label(), p.Root.ID, p.Size(), p.Classify(), mm)
}
