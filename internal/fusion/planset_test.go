package fusion

import (
	"strings"
	"testing"

	"fuseme/internal/dag"
	"fuseme/internal/matrix"
)

func TestTypeAndSpaceStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		Cell: "Cell", Row: "Row", Outer: "Outer", MultiAgg: "Multi-aggregation", Type(99): "Type(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), got, want)
		}
	}
	for sp, want := range map[Space]string{
		SpaceMM: "MM", SpaceL: "L", SpaceR: "R", SpaceO: "O", Space(42): "Space(42)",
	} {
		if got := sp.String(); got != want {
			t.Errorf("space %d = %q, want %q", int(sp), got, want)
		}
	}
}

func TestRuleForMarksOutputs(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 10, 10, 1)
	mid := g.Unary("sq", a)
	top := g.Unary("log", mid)
	g.SetOutput("MID", mid) // an output that is also consumed
	g.SetOutput("TOP", top)
	rule := RuleFor(g, 1<<40)
	if !rule.IsTermination(mid) {
		t.Fatal("consumed output not a termination operator")
	}
	if rule.IsTermination(top) {
		t.Fatal("pure root flagged as termination")
	}
}

func TestCellFuseChains(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 50, 50, 1)
	b := g.Input("B", 50, 50, 1)
	add := g.Binary(matrix.Add, a, b)
	sq := g.Unary("sq", add)
	tr := g.Transpose(sq)
	g.SetOutput("O", tr)
	rule := RuleFor(g, 1<<40)
	used := map[int]bool{}
	plans := CellFuse(g, used, rule)
	if len(plans) != 1 {
		t.Fatalf("%d plans, want 1 fused chain", len(plans))
	}
	if plans[0].Size() != 3 || plans[0].Root != tr {
		t.Fatalf("chain plan %v", plans[0])
	}
	for _, id := range plans[0].MemberIDs() {
		if !used[id] {
			t.Fatal("used map not updated")
		}
	}
	// Second call finds nothing left.
	if rest := CellFuse(g, used, rule); len(rest) != 0 {
		t.Fatalf("re-fusion produced %d plans", len(rest))
	}
}

func TestCellFuseStopsAtTermination(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 50, 50, 1)
	shared := g.Unary("sq", a) // two consumers: termination
	l := g.Unary("log", shared)
	e := g.Unary("exp", shared)
	g.SetOutput("L", l)
	g.SetOutput("E", e)
	rule := RuleFor(g, 1<<40)
	used := map[int]bool{}
	plans := CellFuse(g, used, rule)
	// Three plans: {l}, {e}, {shared} — the shared node fuses with nobody
	// but still runs as its own (seeded) chain.
	if len(plans) != 3 {
		t.Fatalf("%d plans: %v", len(plans), plans)
	}
	for _, p := range plans {
		if p.Size() != 1 {
			t.Fatalf("plan %v should be singleton", p)
		}
	}
}

func TestSingletonsAndValidate(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 20, 10, 1)
	b := g.Input("B", 10, 20, 1)
	mm := g.MatMul(a, b)
	sum := g.Agg(matrix.SumAll, mm)
	g.SetOutput("S", sum)
	used := map[int]bool{}
	plans := Singletons(g, used)
	if len(plans) != 2 {
		t.Fatalf("%d singletons", len(plans))
	}
	var set Set
	set.Plans = plans
	set.Sort()
	if set.Plans[0].Root != mm || set.Plans[1].Root != sum {
		t.Fatal("Sort not topological")
	}
	if err := set.Validate(g); err != nil {
		t.Fatal(err)
	}
	if set.PlanByRoot(mm.ID) != set.Plans[0] || set.PlanByRoot(-1) != nil {
		t.Fatal("PlanByRoot wrong")
	}
	// A set missing an operator fails validation.
	var partial Set
	partial.Plans = plans[:1]
	if err := partial.Validate(g); err == nil || !strings.Contains(err.Error(), "not covered") {
		t.Fatalf("validate: %v", err)
	}
	// A set covering an operator twice fails validation.
	var double Set
	double.Plans = append(append([]*Plan{}, plans...), plans[0])
	if err := double.Validate(g); err == nil || !strings.Contains(err.Error(), "covered by 2") {
		t.Fatalf("validate: %v", err)
	}
}

func TestSingletonsSkipUnreachable(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 5, 5, 1)
	used := g.Unary("sq", a)
	g.Unary("log", a) // dangling
	g.SetOutput("O", used)
	plans := Singletons(g, map[int]bool{})
	if len(plans) != 1 {
		t.Fatalf("%d plans, want 1 (unreachable op skipped)", len(plans))
	}
}

func TestSubtreeContainsMM(t *testing.T) {
	g := dag.NewGraph()
	x := g.Input("X", 20, 20, 0.05)
	u := g.Input("U", 20, 4, 1)
	v := g.Input("V", 4, 20, 1)
	mm := g.MatMul(u, v)
	lgm := g.Unary("abs", mm)
	pat := g.Binary(matrix.Neq, x, g.Scalar(0))
	mul := g.Binary(matrix.Mul, pat, lgm)
	g.SetOutput("O", mul)
	p := planOf(t, mul, mm, lgm, pat)
	if !subtreeContainsMM(p, lgm) {
		t.Fatal("lgm subtree contains mm")
	}
	if subtreeContainsMM(p, pat) {
		t.Fatal("pattern subtree does not contain mm")
	}
	// The (X != 0)-style member driver is accepted as an outer mask.
	m := FindOuterMask(p)
	if m == nil || m.Driver != pat {
		t.Fatalf("mask = %+v, want driver (X != 0)", m)
	}
}
