package fusion

import (
	"fmt"

	"fuseme/internal/dag"
)

// Space identifies which subspace of the 3-dimensional model a node belongs
// to (Section 3.1): the main matrix multiplication spans MM-space; the
// operators feeding its left and right inputs live in L-space and R-space;
// the operators consuming its output live in O-space.
type Space int

// Subspaces of the 3-dimensional model.
const (
	SpaceMM Space = iota
	SpaceL
	SpaceR
	SpaceO
)

// String names the space.
func (s Space) String() string {
	switch s {
	case SpaceMM:
		return "MM"
	case SpaceL:
		return "L"
	case SpaceR:
		return "R"
	case SpaceO:
		return "O"
	}
	return fmt.Sprintf("Space(%d)", int(s))
}

// Side holds the member operators of one subspace: its element-wise /
// transpose nodes plus one nested SpaceTree per matrix multiplication that
// occurs inside the subspace (the recursive model spaces of Algorithm 1 and
// Figure 11).
type Side struct {
	Nodes  []*dag.Node
	Nested []*SpaceTree
}

// ForEachNode calls fn for every operator in the side, including all nodes
// of nested trees (and their matmuls).
func (s *Side) ForEachNode(fn func(n *dag.Node)) {
	for _, n := range s.Nodes {
		fn(n)
	}
	for _, t := range s.Nested {
		t.ForEachNode(fn)
	}
}

// SpaceTree is the 3-dimensional model of a fused operator containing matrix
// multiplication: the main multiplication plus its L-, R- and O-space sides,
// each of which may recursively contain further multiplications.
type SpaceTree struct {
	MM      *dag.Node
	L, R, O Side
}

// ForEachNode calls fn for every operator in the tree, including MM itself.
func (t *SpaceTree) ForEachNode(fn func(n *dag.Node)) {
	fn(t.MM)
	t.L.ForEachNode(fn)
	t.R.ForEachNode(fn)
	t.O.ForEachNode(fn)
}

// Spaces returns (building lazily) the space tree of the plan, or nil for a
// plan without matrix multiplication.
func (p *Plan) Spaces() *SpaceTree {
	if p.MainMM == nil {
		return nil
	}
	if p.spaces == nil {
		p.spaces = buildSpaceTree(p, p.Root, p.MainMM)
	}
	return p.spaces
}

// buildSpaceTree constructs the model space for the sub-plan rooted at root
// whose main multiplication is mm.
func buildSpaceTree(p *Plan, root, mm *dag.Node) *SpaceTree {
	t := &SpaceTree{MM: mm}
	t.L = collectSide(p, mm.Inputs[0])
	t.R = collectSide(p, mm.Inputs[1])
	// O-space: members on the path(s) from root down, stopping at mm.
	var walkO func(n *dag.Node)
	walkO = func(n *dag.Node) {
		if !p.Contains(n) || n == mm {
			return
		}
		if n.Op == dag.OpMatMul {
			t.O.Nested = append(t.O.Nested, nestedTree(p, n, mm))
			return
		}
		t.O.Nodes = append(t.O.Nodes, n)
		for _, in := range n.Inputs {
			walkO(in)
		}
	}
	if root != mm {
		walkO(root)
	}
	return t
}

// collectSide gathers the member operators feeding one input of a
// multiplication, creating nested trees at further multiplications.
func collectSide(p *Plan, n *dag.Node) Side {
	var s Side
	var walk func(n *dag.Node)
	walk = func(n *dag.Node) {
		if !p.Contains(n) {
			return // external input: consolidated, not computed
		}
		if n.Op == dag.OpMatMul {
			s.Nested = append(s.Nested, nestedTree(p, n, nil))
			return
		}
		s.Nodes = append(s.Nodes, n)
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(n)
	return s
}

// nestedTree builds the recursive model space of a non-main multiplication.
// Its O side is empty: the chain between it and its consumer belongs to the
// enclosing space. stopAt guards against descending into the main mm from an
// O-space walk (it cannot occur structurally, but is cheap to assert).
func nestedTree(p *Plan, mm, stopAt *dag.Node) *SpaceTree {
	if mm == stopAt {
		panic("fusion: nested tree rooted at the main matmul")
	}
	return &SpaceTree{
		MM: mm,
		L:  collectSide(p, mm.Inputs[0]),
		R:  collectSide(p, mm.Inputs[1]),
	}
}

// NodeSpaces returns a map from member node ID to the subspace it occupies
// in the top-level model. Nodes inside nested trees are tagged with the
// space of the side the nested multiplication occurs in; the main matmul is
// tagged SpaceMM. Returns nil for plans without matrix multiplication.
func (p *Plan) NodeSpaces() map[int]Space {
	t := p.Spaces()
	if t == nil {
		return nil
	}
	m := make(map[int]Space, len(p.Members))
	m[t.MM.ID] = SpaceMM
	tag := func(side *Side, s Space) {
		side.ForEachNode(func(n *dag.Node) { m[n.ID] = s })
	}
	tag(&t.L, SpaceL)
	tag(&t.R, SpaceR)
	tag(&t.O, SpaceO)
	return m
}

// BlockGridDims returns the block-grid dimensions (I, J, K) of the plan's
// main multiplication for the given block size: I and J are the output block
// grid, K the inner dimension's block count. Panics if the plan has no mm.
func (p *Plan) BlockGridDims(blockSize int) (i, j, k int) {
	if p.MainMM == nil {
		panic("fusion: BlockGridDims on a plan without matmul")
	}
	ceil := func(a int) int { return (a + blockSize - 1) / blockSize }
	return ceil(p.MainMM.Rows), ceil(p.MainMM.Cols), ceil(p.MainMM.Inputs[0].Cols)
}
