package fusion

import (
	"strings"
	"testing"

	"fuseme/internal/dag"
	"fuseme/internal/matrix"
)

func planOf(t testing.TB, root *dag.Node, members ...*dag.Node) *Plan {
	t.Helper()
	m := map[int]*dag.Node{}
	for _, n := range members {
		m[n.ID] = n
	}
	m[root.ID] = root
	p, err := NewPlan(root, m)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return p
}

// nmfDAG builds X * log(U x t(V) + eps): Figure 3/8's running query.
func nmfDAG(t testing.TB) (g *dag.Graph, x, u, v, tr, mm, add, lg, mul *dag.Node) {
	t.Helper()
	g = dag.NewGraph()
	x = g.Input("X", 5000, 5000, 0.001)
	u = g.Input("U", 5000, 300, 1)
	v = g.Input("V", 5000, 300, 1)
	tr = g.Transpose(v)
	mm = g.MatMul(u, tr)
	add = g.Binary(matrix.Add, mm, g.Scalar(1e-3))
	lg = g.Unary("log", add)
	mul = g.Binary(matrix.Mul, x, lg)
	g.SetOutput("O", mul)
	return
}

func TestPlanBasics(t *testing.T) {
	_, _, _, _, tr, mm, add, lg, mul := nmfDAG(t)
	p := planOf(t, mul, tr, mm, add, lg)
	if p.Size() != 5 {
		t.Fatalf("size %d", p.Size())
	}
	if p.MainMM != mm {
		t.Fatalf("main mm = %v", p.MainMM)
	}
	ins := p.ExternalInputs()
	// X, U, V, and the eps scalar.
	if len(ins) != 4 {
		t.Fatalf("%d external inputs", len(ins))
	}
	if got := p.MatMuls(); len(got) != 1 || got[0] != mm {
		t.Fatalf("MatMuls = %v", got)
	}
	if !p.Contains(mm) || p.Contains(ins[0]) {
		t.Fatal("Contains wrong")
	}
	if s := p.String(); !strings.Contains(s, "5 ops") {
		t.Fatalf("String = %q", s)
	}
}

func TestPlanClassifyOuter(t *testing.T) {
	_, _, _, _, tr, mm, add, lg, mul := nmfDAG(t)
	p := planOf(t, mul, tr, mm, add, lg)
	if got := p.Classify(); got != Outer {
		t.Fatalf("Classify = %v, want Outer", got)
	}
	mask := FindOuterMask(p)
	if mask == nil {
		t.Fatal("no outer mask found")
	}
	if mask.Mul != mul || mask.Driver.Name != "X" || mask.Inner != lg {
		t.Fatalf("mask = %+v", mask)
	}
}

func TestClassifyCellRowMultiAgg(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 100, 100, 1)
	b := g.Input("B", 100, 100, 1)
	add := g.Binary(matrix.Add, a, b)
	mul := g.Binary(matrix.Mul, add, b)
	g.SetOutput("O", mul)
	p := planOf(t, mul, add)
	if got := p.Classify(); got != Cell {
		t.Fatalf("cell chain classified %v", got)
	}

	g2 := dag.NewGraph()
	x := g2.Input("X", 1000, 100, 1)
	s := g2.Input("S", 100, 1, 1)
	mm1 := g2.MatMul(x, s)
	tr := g2.Transpose(mm1)
	mm2 := g2.MatMul(tr, x)
	g2.SetOutput("O", mm2)
	p2 := planOf(t, mm2, mm1, tr)
	if got := p2.Classify(); got != Row {
		t.Fatalf("PCA pattern classified %v", got)
	}
	// Main mm is the larger one: mm2 is (1 x 1000 x 100)=1e5... mm1 is
	// (1000 x 1 x 100)=1e5. Equal voxels: first encountered kept.
	if p2.MainMM == nil {
		t.Fatal("no main mm")
	}

	g3 := dag.NewGraph()
	u := g3.Input("U", 500, 500, 1)
	x3 := g3.Input("X", 500, 500, 0.01)
	sum := g3.Agg(matrix.SumAll, g3.Binary(matrix.Mul, u, x3))
	g3.SetOutput("s", sum)
	p3 := planOf(t, sum, sum.Inputs[0])
	if got := p3.Classify(); got != MultiAgg {
		t.Fatalf("agg plan classified %v", got)
	}
}

func TestChooseMainMMPicksLargestVoxels(t *testing.T) {
	g := dag.NewGraph()
	// v1 = t(V) x X : (200x10000) x (10000x8000) -> voxels 200*8000*10000
	// v2 = t(V) x V : voxels 200*200*10000 (smaller)
	v := g.Input("V", 10000, 200, 1)
	w := g.Input("W", 10000, 200, 1)
	x := g.Input("X", 10000, 8000, 0.01)
	u := g.Input("U", 200, 8000, 1)
	vt := g.Transpose(v)
	v1 := g.MatMul(vt, x)
	vt2 := g.Transpose(w)
	v2 := g.MatMul(vt2, w)
	v4 := g.MatMul(v2, u)
	v3 := g.Binary(matrix.Mul, u, v1)
	v5 := g.Binary(matrix.Div, v3, v4)
	g.SetOutput("U2", v5)
	p := planOf(t, v5, vt, v1, vt2, v2, v4, v3)
	if p.MainMM != v1 {
		t.Fatalf("main mm = #%d, want #%d (largest voxels)", p.MainMM.ID, v1.ID)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 10, 10, 1)
	u1 := g.Unary("sq", a)
	u2 := g.Unary("log", u1)
	u3 := g.Unary("exp", u1) // u1 now has two consumers
	g.SetOutput("O1", u2)
	g.SetOutput("O2", u3)

	// Multi-consumer member that is not the root.
	if _, err := NewPlan(u2, map[int]*dag.Node{u1.ID: u1, u2.ID: u2}); err == nil {
		t.Fatal("plan with multi-consumer member validated")
	}
	// Leaf as member.
	if _, err := NewPlan(u2, map[int]*dag.Node{a.ID: a, u2.ID: u2}); err == nil {
		t.Fatal("plan with leaf member validated")
	}
	// Root not in members.
	if _, err := NewPlan(u2, map[int]*dag.Node{u3.ID: u3}); err == nil {
		t.Fatal("plan without root validated")
	}
	// Disconnected members.
	g2 := dag.NewGraph()
	b := g2.Input("B", 10, 10, 1)
	c1 := g2.Unary("sq", b)
	c2 := g2.Unary("log", b)
	g2.SetOutput("O", g2.Binary(matrix.Add, c1, c2))
	if _, err := NewPlan(c1, map[int]*dag.Node{c1.ID: c1, c2.ID: c2}); err == nil {
		t.Fatal("disconnected plan validated")
	}
	// Aggregation not at root.
	g3 := dag.NewGraph()
	d := g3.Input("D", 10, 10, 1)
	ag := g3.Agg(matrix.SumAll, d)
	sq := g3.Unary("sq", ag)
	g3.SetOutput("O", sq)
	if _, err := NewPlan(sq, map[int]*dag.Node{ag.ID: ag, sq.ID: sq}); err == nil {
		t.Fatal("inner aggregation validated")
	}
}

func TestIsTermination(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 10000, 10000, 1)
	shared := g.Unary("sq", a)
	g.Unary("log", shared)
	g.Unary("exp", shared)
	if !IsTermination(shared, 1<<40) {
		t.Fatal("multi-consumer node not termination")
	}
	bigAgg := g.Agg(matrix.SumAll, a)
	if !IsTermination(bigAgg, 1000) {
		t.Fatal("large aggregation not termination")
	}
	if IsTermination(bigAgg, 1<<40) {
		t.Fatal("small aggregation misflagged")
	}
	single := g.Unary("abs", a)
	if IsTermination(single, 0) {
		t.Fatal("plain unary flagged as termination")
	}
}

func TestSpaceTreeNMF(t *testing.T) {
	_, _, _, _, tr, mm, add, lg, mul := nmfDAG(t)
	p := planOf(t, mul, tr, mm, add, lg)
	st := p.Spaces()
	if st == nil || st.MM != mm {
		t.Fatal("space tree missing or wrong mm")
	}
	// L-space: empty (U is external). R-space: the transpose.
	if len(st.L.Nodes) != 0 || len(st.L.Nested) != 0 {
		t.Fatalf("L-space %v", st.L.Nodes)
	}
	if len(st.R.Nodes) != 1 || st.R.Nodes[0] != tr {
		t.Fatalf("R-space %v", st.R.Nodes)
	}
	// O-space: add, log, mul.
	if len(st.O.Nodes) != 3 {
		t.Fatalf("O-space has %d nodes", len(st.O.Nodes))
	}
	spaces := p.NodeSpaces()
	if spaces[mm.ID] != SpaceMM || spaces[tr.ID] != SpaceR ||
		spaces[add.ID] != SpaceO || spaces[lg.ID] != SpaceO || spaces[mul.ID] != SpaceO {
		t.Fatalf("NodeSpaces = %v", spaces)
	}
}

func TestSpaceTreeNestedMM(t *testing.T) {
	// GNMF U-update F1: root b(/), main mm = t(V) x X, O-space contains a
	// nested chain t(V) x V -> x U.
	g := dag.NewGraph()
	v := g.Input("V", 10000, 200, 1)
	w := g.Input("W", 10000, 200, 1)
	x := g.Input("X", 10000, 8000, 0.01)
	u := g.Input("U", 200, 8000, 1)
	vt1 := g.Transpose(v)
	v1 := g.MatMul(vt1, x) // main (largest)
	vt2 := g.Transpose(w)
	v2 := g.MatMul(vt2, w)
	v4 := g.MatMul(v2, u)
	v3 := g.Binary(matrix.Mul, u, v1)
	v5 := g.Binary(matrix.Div, v3, v4)
	g.SetOutput("U2", v5)
	p := planOf(t, v5, vt1, v1, vt2, v2, v4, v3)
	st := p.Spaces()
	if st.MM != v1 {
		t.Fatalf("main mm #%d", st.MM.ID)
	}
	if len(st.L.Nodes) != 1 || st.L.Nodes[0] != vt1 {
		t.Fatalf("L-space %v", st.L.Nodes)
	}
	if len(st.R.Nodes) != 0 {
		t.Fatalf("R-space %v", st.R.Nodes)
	}
	// O-space: v3, v5 element-wise plus nested tree at v4.
	if len(st.O.Nodes) != 2 {
		t.Fatalf("O-space nodes %d", len(st.O.Nodes))
	}
	if len(st.O.Nested) != 1 || st.O.Nested[0].MM != v4 {
		t.Fatal("nested v4 tree missing")
	}
	nested := st.O.Nested[0]
	// v4's L side is another nested tree at v2.
	if len(nested.L.Nested) != 1 || nested.L.Nested[0].MM != v2 {
		t.Fatal("doubly nested v2 tree missing")
	}
	if len(nested.L.Nested[0].L.Nodes) != 1 || nested.L.Nested[0].L.Nodes[0] != vt2 {
		t.Fatal("v2's transpose not in its L side")
	}
	// Space tagging: nested nodes inherit the enclosing side.
	spaces := p.NodeSpaces()
	if spaces[v4.ID] != SpaceO || spaces[v2.ID] != SpaceO || spaces[vt2.ID] != SpaceO {
		t.Fatalf("nested tagging %v", spaces)
	}
	if spaces[vt1.ID] != SpaceL {
		t.Fatal("vt1 should be L")
	}
	// Count all nodes via ForEachNode.
	count := 0
	st.ForEachNode(func(n *dag.Node) { count++ })
	if count != p.Size() {
		t.Fatalf("ForEachNode visited %d of %d", count, p.Size())
	}
}

func TestBlockGridDims(t *testing.T) {
	_, _, _, _, tr, mm, add, lg, mul := nmfDAG(t)
	p := planOf(t, mul, tr, mm, add, lg)
	i, j, k := p.BlockGridDims(1000)
	if i != 5 || j != 5 || k != 1 {
		t.Fatalf("grid %d,%d,%d; want 5,5,1", i, j, k)
	}
	i, j, k = p.BlockGridDims(300)
	if i != 17 || j != 17 || k != 1 {
		t.Fatalf("grid %d,%d,%d; want 17,17,1", i, j, k)
	}
}

func TestFindOuterMaskRejectsDenseDriver(t *testing.T) {
	g := dag.NewGraph()
	xDense := g.Input("X", 1000, 1000, 0.9)
	u := g.Input("U", 1000, 50, 1)
	v := g.Input("V", 50, 1000, 1)
	mm := g.MatMul(u, v)
	mul := g.Binary(matrix.Mul, xDense, mm)
	g.SetOutput("O", mul)
	p := planOf(t, mul, mm)
	if FindOuterMask(p) != nil {
		t.Fatal("dense driver accepted as outer mask")
	}
	if p.Classify() != Row {
		t.Fatal("should classify Row without sparse driver")
	}
}

func TestFindOuterMaskRejectsTransposeOnPath(t *testing.T) {
	g := dag.NewGraph()
	x := g.Input("X", 1000, 1000, 0.01)
	u := g.Input("U", 1000, 50, 1)
	v := g.Input("V", 50, 1000, 1)
	mm := g.MatMul(u, v)
	tr := g.Transpose(mm) // transpose between mask and mm
	mul := g.Binary(matrix.Mul, x, tr)
	g.SetOutput("O", mul)
	p := planOf(t, mul, mm, tr)
	if FindOuterMask(p) != nil {
		t.Fatal("transpose on masked path accepted")
	}
}
