package fusion

import (
	"fmt"
	"sort"

	"fuseme/internal/dag"
)

// TermRule decides which operators are termination operators (Section 4.1)
// for a particular query: multi-consumer operators (materialisation points),
// named query outputs that are also consumed downstream, and unary
// aggregations whose input is too large to aggregate without a shuffle.
type TermRule struct {
	TaskMemBytes int64
	OutputIDs    map[int]bool // node IDs registered as query outputs
}

// RuleFor builds the termination rule for a graph under a task budget.
func RuleFor(g *dag.Graph, taskMemBytes int64) TermRule {
	outs := make(map[int]bool, len(g.Outputs()))
	for _, n := range g.Outputs() {
		outs[n.ID] = true
	}
	return TermRule{TaskMemBytes: taskMemBytes, OutputIDs: outs}
}

// IsTermination reports whether n terminates fusion (it may still be fused
// as the top operator of a plan).
func (r TermRule) IsTermination(n *dag.Node) bool {
	if n.NumConsumers() > 1 {
		return true
	}
	if r.OutputIDs[n.ID] && n.NumConsumers() > 0 {
		return true
	}
	if n.Op == dag.OpUnaryAgg && n.Inputs[0].EstSizeBytes() > r.TaskMemBytes {
		return true
	}
	return false
}

// Set is a complete partition of a query DAG's operators into partial fusion
// plans (singletons for operators left unfused), ordered for execution.
type Set struct {
	Plans []*Plan
}

// Sort orders the plans topologically. Because builder node IDs increase
// along data flow and every plan's root carries the plan's maximum ID,
// ascending root ID is a valid topological order.
func (s *Set) Sort() {
	sort.Slice(s.Plans, func(i, j int) bool { return s.Plans[i].Root.ID < s.Plans[j].Root.ID })
}

// Validate checks that the set covers every operator reachable from the
// graph's outputs exactly once and that each plan is internally valid.
func (s *Set) Validate(g *dag.Graph) error {
	covered := map[int]int{}
	for _, p := range s.Plans {
		if err := p.Validate(); err != nil {
			return err
		}
		for id := range p.Members {
			covered[id]++
		}
	}
	reach := g.ReachableFromOutputs()
	for _, n := range g.Nodes() {
		if n.IsLeaf() || !reach[n.ID] {
			continue
		}
		switch covered[n.ID] {
		case 0:
			return fmt.Errorf("fusion: operator %d (%s) not covered by any plan", n.ID, n.Label())
		case 1:
		default:
			return fmt.Errorf("fusion: operator %d (%s) covered by %d plans", n.ID, n.Label(), covered[n.ID])
		}
	}
	return nil
}

// PlanByRoot returns the plan whose root is node id, or nil.
func (s *Set) PlanByRoot(id int) *Plan {
	for _, p := range s.Plans {
		if p.Root.ID == id {
			return p
		}
	}
	return nil
}

// fusableCell reports whether n may join a Cell (element-wise) fusion body:
// unary, binary and transpose operators qualify.
func fusableCell(n *dag.Node) bool {
	switch n.Op {
	case dag.OpUnary, dag.OpBinary, dag.OpTranspose:
		return true
	}
	return false
}

// CellFuse greedily fuses chains of consecutive element-wise operators
// (Cell fusion) among the not-yet-used operators of g, honouring the
// termination rule. Aggregations may cap a chain as its root. Every operator
// it consumes is marked in used. This is both MatFast's folded-operator
// generator and the residual pass of the other planners.
func CellFuse(g *dag.Graph, used map[int]bool, rule TermRule) []*Plan {
	var plans []*Plan
	reach := g.ReachableFromOutputs()
	// Seed from the highest IDs down so chains grow from their tops.
	nodes := g.Nodes()
	for i := len(nodes) - 1; i >= 0; i-- {
		seed := nodes[i]
		if used[seed.ID] || seed.IsLeaf() || !reach[seed.ID] {
			continue
		}
		if !fusableCell(seed) && seed.Op != dag.OpUnaryAgg {
			continue
		}
		if seed.Op == dag.OpUnaryAgg && rule.IsTermination(seed) {
			continue // large aggregation: runs as its own shuffling operator
		}
		members := map[int]*dag.Node{seed.ID: seed}
		// Grow downward through non-termination element-wise operators.
		var grow func(n *dag.Node)
		grow = func(n *dag.Node) {
			for _, in := range n.Inputs {
				if in.IsLeaf() || used[in.ID] || members[in.ID] != nil {
					continue
				}
				if !fusableCell(in) || rule.IsTermination(in) {
					continue
				}
				members[in.ID] = in
				grow(in)
			}
		}
		grow(seed)
		p, err := NewPlan(seed, members)
		if err != nil {
			// Should not happen; fall back to a singleton.
			p, err = NewPlan(seed, map[int]*dag.Node{seed.ID: seed})
			if err != nil {
				continue
			}
		}
		for id := range p.Members {
			used[id] = true
		}
		plans = append(plans, p)
	}
	return plans
}

// Singletons wraps every remaining reachable operator of g in its own
// single-operator plan (the unfused execution of DistME and of operators no
// generator claimed).
func Singletons(g *dag.Graph, used map[int]bool) []*Plan {
	var plans []*Plan
	reach := g.ReachableFromOutputs()
	for _, n := range g.Nodes() {
		if n.IsLeaf() || used[n.ID] || !reach[n.ID] {
			continue
		}
		p, err := NewPlan(n, map[int]*dag.Node{n.ID: n})
		if err != nil {
			continue
		}
		used[n.ID] = true
		plans = append(plans, p)
	}
	return plans
}
