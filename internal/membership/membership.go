// Package membership tracks the liveness of a FuseME TCP cluster's workers.
//
// The coordinator owns one Table. Each worker is a Member with a stable
// integer ID (its slot in the coordinator's worker slice) and a liveness
// state driven by the heartbeat loop and the FME1 v4 join/leave messages:
//
//	none ──Join──▶ joining ──▶ active ◀──▶ suspect
//	                  │           │            │
//	                  ▼           ▼            ▼
//	                dead        left         dead
//
// Transitions outside that graph are rejected — a dead or left member never
// comes back; a healthy process that wants back in joins again as a NEW
// member with a fresh ID. Every accepted transition bumps the table's
// cluster epoch, so the epoch doubles as a cheap fingerprint of "which
// workers can run tasks right now": compiled plans cache against it and are
// re-derived the moment membership changes.
package membership

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// State is a member's position in the liveness state machine.
type State int

// The liveness states, in lifecycle order.
const (
	// None is the pseudo-state before a member exists; it only appears as
	// the From field of a join Event.
	None State = iota - 1
	// Joining: the join request arrived, the control handshake is underway.
	Joining
	// Active: handshaked and heartbeating; eligible for task dispatch.
	Active
	// Suspect: one transport operation failed; dispatch is paused while the
	// coordinator probes the worker once before giving up on it.
	Suspect
	// Dead: the probe failed too. Terminal — the slot is never reused and
	// the residency ledger forgets the worker's cached blocks.
	Dead
	// Left: the worker drained and departed voluntarily (msgLeave).
	// Terminal, like Dead, but distinguishes operator intent in /v1/status.
	Left
)

// String returns the state's wire/metrics label.
func (s State) String() string {
	switch s {
	case None:
		return "none"
	case Joining:
		return "joining"
	case Active:
		return "active"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Left:
		return "left"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// States lists every real state, in lifecycle order — handy for metrics
// enumeration so gauges exist (at zero) before a state is ever entered.
func States() []State { return []State{Joining, Active, Suspect, Dead, Left} }

// legal is the transition graph. Dead and Left are terminal.
var legal = map[State][]State{
	Joining: {Active, Dead},
	Active:  {Suspect, Left},
	Suspect: {Active, Dead, Left},
	Dead:    {},
	Left:    {},
}

// CanTransition reports whether from → to is a legal edge.
func CanTransition(from, to State) bool {
	for _, s := range legal[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Member is one worker's row in the table.
type Member struct {
	// ID is the worker's stable slot index; never reused.
	ID int
	// Addr is the worker's task-listener address.
	Addr string
	// State is the current liveness state.
	State State
	// Epoch is the cluster epoch at the member's last transition.
	Epoch uint64
}

// Event describes one accepted membership change.
type Event struct {
	// Member is the post-transition row.
	Member Member
	// From and To are the transition's endpoints (From == None for a join).
	From, To State
	// Epoch is the cluster epoch after the change.
	Epoch uint64
}

// Table is the coordinator-side membership table. All methods are safe for
// concurrent use; the change callback runs outside the table lock, so it may
// call back into the table.
type Table struct {
	mu       sync.Mutex
	members  []Member
	epoch    uint64
	changes  int64
	onChange func(Event)
	watch    chan struct{}
}

// NewTable returns an empty table at epoch 0.
func NewTable() *Table { return &Table{} }

// Watch returns a channel closed at the next accepted membership change.
// Waiters snapshot the channel BEFORE inspecting the table, check their
// condition, and block on the channel only if it does not hold yet — the
// close wakes them to re-check, so no caller needs to sleep-poll. Each
// accepted change closes the current channel and installs a fresh one.
func (t *Table) Watch() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.watch == nil {
		t.watch = make(chan struct{})
	}
	return t.watch
}

// notifyLocked wakes Watch waiters; the caller holds t.mu.
func (t *Table) notifyLocked() {
	if t.watch != nil {
		close(t.watch)
		t.watch = nil
	}
}

// OnChange installs the callback invoked (synchronously, outside the table
// lock) after every accepted change. Install it before the first Join; a
// second call replaces the first.
func (t *Table) OnChange(fn func(Event)) {
	t.mu.Lock()
	t.onChange = fn
	t.mu.Unlock()
}

// Join adds a new member in the Joining state and returns its row. IDs are
// assigned densely in join order and never reused.
func (t *Table) Join(addr string) Member {
	t.mu.Lock()
	t.epoch++
	t.changes++
	m := Member{ID: len(t.members), Addr: addr, State: Joining, Epoch: t.epoch}
	t.members = append(t.members, m)
	ev := Event{Member: m, From: None, To: Joining, Epoch: t.epoch}
	fn := t.onChange
	t.notifyLocked()
	t.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
	return m
}

// Transition moves member id to state to, enforcing the legal edges. It
// returns the updated row, or an error naming the illegal edge. A
// no-op transition (already in to) is an error too: the state machine has no
// self-loops, and callers rely on "accepted ⇒ something changed".
func (t *Table) Transition(id int, to State) (Member, error) {
	t.mu.Lock()
	if id < 0 || id >= len(t.members) {
		t.mu.Unlock()
		return Member{}, fmt.Errorf("membership: no member %d", id)
	}
	from := t.members[id].State
	if !CanTransition(from, to) {
		t.mu.Unlock()
		return Member{}, fmt.Errorf("membership: illegal transition %s -> %s for member %d", from, to, id)
	}
	t.epoch++
	t.changes++
	t.members[id].State = to
	t.members[id].Epoch = t.epoch
	m := t.members[id]
	ev := Event{Member: m, From: from, To: to, Epoch: t.epoch}
	fn := t.onChange
	t.notifyLocked()
	t.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
	return m, nil
}

// Activate marks a joining member active (handshake completed).
func (t *Table) Activate(id int) (Member, error) { return t.Transition(id, Active) }

// Suspect pauses dispatch to an active member after a transport failure.
func (t *Table) Suspect(id int) (Member, error) { return t.Transition(id, Suspect) }

// Confirm returns a suspect member to active (the probe succeeded).
func (t *Table) Confirm(id int) (Member, error) { return t.Transition(id, Active) }

// MarkDead evicts a member whose probe failed (or whose handshake never
// completed).
func (t *Table) MarkDead(id int) (Member, error) { return t.Transition(id, Dead) }

// Leave records a voluntary departure.
func (t *Table) Leave(id int) (Member, error) { return t.Transition(id, Left) }

// Get returns member id's row.
func (t *Table) Get(id int) (Member, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.members) {
		return Member{}, false
	}
	return t.members[id], true
}

// Members returns a snapshot of every row, in ID order.
func (t *Table) Members() []Member {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Member, len(t.members))
	copy(out, t.members)
	return out
}

// Epoch returns the cluster epoch: the count of accepted changes since the
// table was created. Two equal epochs imply identical membership.
func (t *Table) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Changes returns the total number of accepted membership changes.
func (t *Table) Changes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.changes
}

// ActiveCount returns how many members are currently active.
func (t *Table) ActiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, m := range t.members {
		if m.State == Active {
			n++
		}
	}
	return n
}

// CountByState returns the number of members in each state. Every real
// state is present in the result, possibly at zero.
func (t *Table) CountByState() map[State]int {
	out := make(map[State]int, len(legal))
	for _, s := range States() {
		out[s] = 0
	}
	t.mu.Lock()
	for _, m := range t.members {
		out[m.State]++
	}
	t.mu.Unlock()
	return out
}

// LiveIDs returns the set of members that may legitimately hold cached
// blocks: active and suspect (a suspect worker's cache survives the probe —
// adverts are deltas, so dropping its ledger rows on mere suspicion would
// under-count residency forever after it recovers).
func (t *Table) LiveIDs() map[int]bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]bool)
	for _, m := range t.members {
		if m.State == Active || m.State == Suspect {
			out[m.ID] = true
		}
	}
	return out
}

// Fingerprint returns a compact string identifying the current dispatchable
// membership, e.g. "e7:a0,2,3". Compiled-plan cache keys embed it so a plan
// built for one worker set is never replayed against another.
func (t *Table) Fingerprint() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.members))
	for _, m := range t.members {
		if m.State == Active {
			ids = append(ids, m.ID)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "e%d:a", t.epoch)
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}
