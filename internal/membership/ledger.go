package membership

import (
	"sort"
	"sync"
)

// Ledger is the coordinator's view of which worker holds which cached item.
// Workers report cache mutations as deltas (added / evicted keys piggybacked
// on task completion), so the ledger is only correct while those deltas keep
// flowing; when a member dies or leaves, Reconcile drops its rows wholesale.
//
// The key type is generic so the residency property tests exercise the real
// reconciliation code with simple keys; the coordinator instantiates it with
// blockcache.Key.
type Ledger[K comparable] struct {
	mu   sync.Mutex
	held map[int]map[K]bool
}

// NewLedger returns an empty ledger.
func NewLedger[K comparable]() *Ledger[K] {
	return &Ledger[K]{held: make(map[int]map[K]bool)}
}

// Record folds one delta advert into member id's rows.
func (l *Ledger[K]) Record(id int, added, evicted []K) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rows := l.held[id]
	if rows == nil {
		rows = make(map[K]bool)
		l.held[id] = rows
	}
	for _, k := range added {
		rows[k] = true
	}
	for _, k := range evicted {
		delete(rows, k)
	}
}

// Add records a single key for member id (replica pushes).
func (l *Ledger[K]) Add(id int, k K) { l.Record(id, []K{k}, nil) }

// Remove forgets a single key for member id.
func (l *Ledger[K]) Remove(id int, k K) { l.Record(id, nil, []K{k}) }

// Holds reports whether member id currently holds key k.
func (l *Ledger[K]) Holds(id int, k K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.held[id][k]
}

// Holders returns the IDs of every member holding key k, ascending.
func (l *Ledger[K]) Holders(k K) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for id, rows := range l.held {
		if rows[k] {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Drop forgets every row of member id.
func (l *Ledger[K]) Drop(id int) {
	l.mu.Lock()
	delete(l.held, id)
	l.mu.Unlock()
}

// Collect returns, per member, the keys matching pred — the invalidation
// scan. The predicate must not call back into the ledger.
func (l *Ledger[K]) Collect(pred func(id int, k K) bool) map[int][]K {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int][]K)
	for id, rows := range l.held {
		for k := range rows {
			if pred(id, k) {
				out[id] = append(out[id], k)
			}
		}
	}
	return out
}

// Reconcile drops the rows of every member not in live and returns how many
// keys were forgotten. Called on every membership change with the table's
// LiveIDs so a dead or departed worker's blocks stop counting as resident.
func (l *Ledger[K]) Reconcile(live map[int]bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	dropped := 0
	for id, rows := range l.held {
		if !live[id] {
			dropped += len(rows)
			delete(l.held, id)
		}
	}
	return dropped
}

// Members returns the IDs with at least one row, ascending.
func (l *Ledger[K]) Members() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int, 0, len(l.held))
	for id, rows := range l.held {
		if len(rows) > 0 {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Keys returns member id's held keys in unspecified order.
func (l *Ledger[K]) Keys(id int) []K {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]K, 0, len(l.held[id]))
	for k := range l.held[id] {
		out = append(out, k)
	}
	return out
}

// Size returns the total number of (member, key) rows.
func (l *Ledger[K]) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, rows := range l.held {
		n += len(rows)
	}
	return n
}
