package membership

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestTransitionMatrix checks every (from, to) pair against the documented
// state machine: exactly the legal edges are accepted, everything else —
// including self-loops and resurrection from dead/left — is rejected.
func TestTransitionMatrix(t *testing.T) {
	want := map[State]map[State]bool{
		Joining: {Active: true, Dead: true},
		Active:  {Suspect: true, Left: true},
		Suspect: {Active: true, Dead: true, Left: true},
		Dead:    {},
		Left:    {},
	}
	for _, from := range States() {
		for _, to := range States() {
			// Build a fresh member and walk it into state from.
			tbl := NewTable()
			m := tbl.Join("w")
			if err := walkTo(tbl, m.ID, from); err != nil {
				t.Fatalf("setup %s: %v", from, err)
			}
			_, err := tbl.Transition(m.ID, to)
			if want[from][to] && err != nil {
				t.Errorf("%s -> %s: legal edge rejected: %v", from, to, err)
			}
			if !want[from][to] && err == nil {
				t.Errorf("%s -> %s: illegal edge accepted", from, to)
			}
		}
	}
}

// walkTo drives a joining member into state s along legal edges only.
func walkTo(tbl *Table, id int, s State) error {
	path := map[State][]State{
		Joining: nil,
		Active:  {Active},
		Suspect: {Active, Suspect},
		Dead:    {Active, Suspect, Dead},
		Left:    {Active, Left},
	}
	steps, ok := path[s]
	if !ok {
		return fmt.Errorf("no path to %s", s)
	}
	for _, step := range steps {
		if _, err := tbl.Transition(id, step); err != nil {
			return err
		}
	}
	return nil
}

func TestTransitionUnknownMember(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Transition(0, Active); err == nil {
		t.Fatal("transition on empty table accepted")
	}
	tbl.Join("w")
	if _, err := tbl.Transition(1, Active); err == nil {
		t.Fatal("transition on out-of-range id accepted")
	}
	if _, err := tbl.Transition(-1, Active); err == nil {
		t.Fatal("transition on negative id accepted")
	}
}

// TestEpochMonotonic: every accepted change bumps the epoch by exactly one;
// rejected changes leave it untouched.
func TestEpochMonotonic(t *testing.T) {
	tbl := NewTable()
	if tbl.Epoch() != 0 {
		t.Fatalf("fresh table epoch = %d, want 0", tbl.Epoch())
	}
	m := tbl.Join("a")
	if tbl.Epoch() != 1 {
		t.Fatalf("after join epoch = %d, want 1", tbl.Epoch())
	}
	if _, err := tbl.Activate(m.ID); err != nil {
		t.Fatal(err)
	}
	if tbl.Epoch() != 2 || tbl.Changes() != 2 {
		t.Fatalf("epoch/changes = %d/%d, want 2/2", tbl.Epoch(), tbl.Changes())
	}
	if _, err := tbl.Activate(m.ID); err == nil {
		t.Fatal("self-loop accepted")
	}
	if tbl.Epoch() != 2 {
		t.Fatalf("rejected transition moved the epoch to %d", tbl.Epoch())
	}
	got, _ := tbl.Get(m.ID)
	if got.Epoch != 2 || got.State != Active {
		t.Fatalf("member row = %+v", got)
	}
}

// TestEvents: the change callback sees every accepted transition with the
// right endpoints, and runs outside the lock (it can call the table).
func TestEvents(t *testing.T) {
	tbl := NewTable()
	var events []Event
	tbl.OnChange(func(ev Event) {
		_ = tbl.Epoch() // must not deadlock
		events = append(events, ev)
	})
	m := tbl.Join("a")
	tbl.Activate(m.ID)
	tbl.Suspect(m.ID)
	tbl.Confirm(m.ID)
	tbl.Leave(m.ID)
	wantFrom := []State{None, Joining, Active, Suspect, Active}
	wantTo := []State{Joining, Active, Suspect, Active, Left}
	if len(events) != len(wantTo) {
		t.Fatalf("saw %d events, want %d", len(events), len(wantTo))
	}
	for i, ev := range events {
		if ev.From != wantFrom[i] || ev.To != wantTo[i] {
			t.Errorf("event %d: %s -> %s, want %s -> %s", i, ev.From, ev.To, wantFrom[i], wantTo[i])
		}
		if ev.Epoch != uint64(i+1) {
			t.Errorf("event %d: epoch %d, want %d", i, ev.Epoch, i+1)
		}
	}
}

// TestRejoinIsNewMember: a dead worker's ID is never reused; the same
// address joining again gets a fresh row.
func TestRejoinIsNewMember(t *testing.T) {
	tbl := NewTable()
	a := tbl.Join("w:1")
	tbl.Activate(a.ID)
	tbl.Suspect(a.ID)
	tbl.MarkDead(a.ID)
	b := tbl.Join("w:1")
	if b.ID == a.ID {
		t.Fatalf("rejoin reused id %d", a.ID)
	}
	tbl.Activate(b.ID)
	got, _ := tbl.Get(a.ID)
	if got.State != Dead {
		t.Fatalf("old row state = %s, want dead", got.State)
	}
	if n := tbl.ActiveCount(); n != 1 {
		t.Fatalf("active count = %d, want 1", n)
	}
}

func TestCountsAndLiveIDs(t *testing.T) {
	tbl := NewTable()
	ids := make([]int, 5)
	for i := range ids {
		ids[i] = tbl.Join(fmt.Sprintf("w:%d", i)).ID
	}
	for _, id := range ids[:4] {
		tbl.Activate(id)
	}
	tbl.Suspect(ids[1])
	tbl.Suspect(ids[2])
	tbl.MarkDead(ids[2])
	tbl.Leave(ids[3])
	// ids[4] stays joining.
	counts := tbl.CountByState()
	want := map[State]int{Joining: 1, Active: 1, Suspect: 1, Dead: 1, Left: 1}
	for s, n := range want {
		if counts[s] != n {
			t.Errorf("count[%s] = %d, want %d", s, counts[s], n)
		}
	}
	live := tbl.LiveIDs()
	if !live[ids[0]] || !live[ids[1]] || len(live) != 2 {
		t.Errorf("live ids = %v, want {%d, %d}", live, ids[0], ids[1])
	}
}

// TestFingerprint: the fingerprint pins both the epoch and the active set,
// so any accepted change — even one that restores the same active set —
// yields a fresh fingerprint and therefore a fresh plan-cache key.
func TestFingerprint(t *testing.T) {
	tbl := NewTable()
	a := tbl.Join("a")
	b := tbl.Join("b")
	tbl.Activate(a.ID)
	tbl.Activate(b.ID)
	fp1 := tbl.Fingerprint()
	if !strings.Contains(fp1, "a0,1") {
		t.Fatalf("fingerprint %q does not list active ids", fp1)
	}
	tbl.Suspect(b.ID)
	fp2 := tbl.Fingerprint()
	if fp2 == fp1 {
		t.Fatal("fingerprint unchanged after suspect")
	}
	tbl.Confirm(b.ID)
	fp3 := tbl.Fingerprint()
	if fp3 == fp1 || fp3 == fp2 {
		t.Fatal("fingerprint must change on every epoch bump")
	}
}

// TestTableConcurrency hammers the table from many goroutines under -race:
// joins, legal and illegal transitions, reads. Invariant: epoch ==
// changes == number of accepted mutations.
func TestTableConcurrency(t *testing.T) {
	tbl := NewTable()
	var accepted sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				switch rng.Intn(4) {
				case 0:
					m := tbl.Join(fmt.Sprintf("g%d-%d", g, i))
					accepted.Store(fmt.Sprintf("j%d-%d", g, i), m.ID)
				case 1:
					tbl.Transition(rng.Intn(20), State(rng.Intn(5)))
				case 2:
					tbl.Members()
					tbl.CountByState()
				default:
					tbl.Fingerprint()
					tbl.LiveIDs()
				}
			}
		}(g)
	}
	wg.Wait()
	if tbl.Epoch() != uint64(tbl.Changes()) {
		t.Fatalf("epoch %d != changes %d", tbl.Epoch(), tbl.Changes())
	}
	// IDs must be dense: members[i].ID == i.
	for i, m := range tbl.Members() {
		if m.ID != i {
			t.Fatalf("member %d has id %d", i, m.ID)
		}
	}
}
