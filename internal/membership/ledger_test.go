package membership

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestLedgerBasics(t *testing.T) {
	l := NewLedger[string]()
	l.Record(0, []string{"a", "b"}, nil)
	l.Record(1, []string{"b"}, nil)
	if !l.Holds(0, "a") || !l.Holds(0, "b") || !l.Holds(1, "b") {
		t.Fatal("recorded keys not held")
	}
	if l.Holds(1, "a") || l.Holds(2, "a") {
		t.Fatal("phantom holdings")
	}
	if got := l.Holders("b"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("holders(b) = %v", got)
	}
	l.Record(0, nil, []string{"a"})
	if l.Holds(0, "a") {
		t.Fatal("evicted key still held")
	}
	l.Add(2, "c")
	l.Remove(2, "c")
	if l.Holds(2, "c") {
		t.Fatal("removed key still held")
	}
	if got := l.Size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

func TestLedgerCollect(t *testing.T) {
	l := NewLedger[int]()
	l.Record(0, []int{1, 2, 3}, nil)
	l.Record(1, []int{2, 4}, nil)
	got := l.Collect(func(id, k int) bool { return k%2 == 0 })
	if len(got[0]) != 1 || got[0][0] != 2 {
		t.Fatalf("collect member 0 = %v", got[0])
	}
	if len(got[1]) != 2 {
		t.Fatalf("collect member 1 = %v", got[1])
	}
}

// TestLedgerReconcileProperty is the residency property test: drive a
// membership table and a ledger through random join / advert / suspect /
// recover / kill / leave sequences and check, after every reconcile, that
//
//  1. every ledger row belongs to a live (active or suspect) member,
//  2. no live member lost rows it legitimately holds, and
//  3. Reconcile's dropped count equals the rows that disappeared.
//
// A shadow map (plain code, no locking subtleties) is the oracle.
func TestLedgerReconcileProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		tbl := NewTable()
		l := NewLedger[int]()
		shadow := map[int]map[int]bool{} // member -> key set, oracle
		var ids []int

		for step := 0; step < 200; step++ {
			switch rng.Intn(6) {
			case 0: // join + activate
				m := tbl.Join(fmt.Sprintf("w%d", len(ids)))
				tbl.Activate(m.ID)
				ids = append(ids, m.ID)
				shadow[m.ID] = map[int]bool{}
			case 1, 2: // advert from a random live member
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if m, _ := tbl.Get(id); m.State != Active && m.State != Suspect {
					continue
				}
				var added, evicted []int
				for i := rng.Intn(4); i > 0; i-- {
					added = append(added, rng.Intn(32))
				}
				for i := rng.Intn(2); i > 0; i-- {
					evicted = append(evicted, rng.Intn(32))
				}
				l.Record(id, added, evicted)
				for _, k := range added {
					shadow[id][k] = true
				}
				for _, k := range evicted {
					delete(shadow[id], k)
				}
			case 3: // suspect (cache must survive)
				if len(ids) == 0 {
					continue
				}
				tbl.Suspect(ids[rng.Intn(len(ids))])
			case 4: // recover
				if len(ids) == 0 {
					continue
				}
				tbl.Confirm(ids[rng.Intn(len(ids))])
			case 5: // kill or leave
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if m, _ := tbl.Get(id); m.State == Suspect && rng.Intn(2) == 0 {
					tbl.MarkDead(id)
				} else {
					tbl.Leave(id)
				}
			}

			// Reconcile after every step, exactly like the coordinator's
			// membership-change hook.
			live := tbl.LiveIDs()
			var wantDropped int
			for id, rows := range shadow {
				if !live[id] {
					wantDropped += len(rows)
				}
			}
			dropped := l.Reconcile(live)
			if dropped != wantDropped {
				t.Fatalf("trial %d step %d: reconcile dropped %d, oracle says %d",
					trial, step, dropped, wantDropped)
			}
			for id := range shadow {
				if !live[id] {
					delete(shadow, id)
				}
			}

			// Invariant 1: no rows for non-live members.
			for _, id := range l.Members() {
				if !live[id] {
					t.Fatalf("trial %d step %d: ledger keeps rows for non-live member %d",
						trial, step, id)
				}
			}
			// Invariant 2: live members keep exactly their shadow rows.
			for id, rows := range shadow {
				got := l.Keys(id)
				if len(got) != len(rows) {
					t.Fatalf("trial %d step %d: member %d has %d rows, oracle %d",
						trial, step, id, len(got), len(rows))
				}
				for _, k := range got {
					if !rows[k] {
						t.Fatalf("trial %d step %d: member %d holds phantom key %d",
							trial, step, id, k)
					}
				}
			}
		}
	}
}

// TestLedgerConcurrency: concurrent adverts, drops and reconciles must be
// race-free and leave the ledger consistent (only surviving members hold
// rows).
func TestLedgerConcurrency(t *testing.T) {
	l := NewLedger[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				id := rng.Intn(8)
				switch rng.Intn(4) {
				case 0:
					l.Record(id, []int{rng.Intn(64)}, nil)
				case 1:
					l.Record(id, nil, []int{rng.Intn(64)})
				case 2:
					l.Holders(rng.Intn(64))
					l.Size()
				default:
					l.Reconcile(map[int]bool{0: true, 1: true, 2: true, 3: true})
				}
			}
		}(g)
	}
	wg.Wait()
	l.Reconcile(map[int]bool{0: true})
	for _, id := range l.Members() {
		if id != 0 {
			t.Fatalf("member %d survived final reconcile", id)
		}
	}
}
