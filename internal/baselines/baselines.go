// Package baselines reproduces the fusion plan generators of the systems the
// paper compares against:
//
//   - GEN (SystemDS): template-based fusion — Cell chains, plus Outer
//     templates that include a matrix multiplication only when sparsity
//     exploitation applies; large multiplications otherwise stay unfused
//     (Section 4: "GEN generates a partial fusion plan that includes
//     large-scale matrix multiplication only when sparsity exploitation is
//     possible").
//   - MatFast: folded operators over consecutive element-wise operators
//     only.
//   - DistME: no fusion at all — every operator runs standalone (its
//     contribution is CuboidMM for the multiplications, applied by the
//     engine layer).
package baselines

import (
	"fuseme/internal/dag"
	"fuseme/internal/fusion"
	"fuseme/internal/matrix"
)

// GENGenerate builds the SystemDS-style plan set for g.
func GENGenerate(g *dag.Graph, rule fusion.TermRule) fusion.Set {
	used := map[int]bool{}
	var set fusion.Set
	set.Plans = append(set.Plans, outerTemplates(g, used, rule)...)
	set.Plans = append(set.Plans, fusion.CellFuse(g, used, rule)...)
	set.Plans = append(set.Plans, fusion.Singletons(g, used)...)
	set.Sort()
	return set
}

// MatFastGenerate builds the MatFast-style plan set: folded element-wise
// chains, everything else standalone.
func MatFastGenerate(g *dag.Graph, rule fusion.TermRule) fusion.Set {
	used := map[int]bool{}
	var set fusion.Set
	set.Plans = append(set.Plans, fusion.CellFuse(g, used, rule)...)
	set.Plans = append(set.Plans, fusion.Singletons(g, used)...)
	set.Sort()
	return set
}

// DistMEGenerate builds the unfused plan set: one singleton per operator.
func DistMEGenerate(g *dag.Graph) fusion.Set {
	var set fusion.Set
	set.Plans = fusion.Singletons(g, map[int]bool{})
	set.Sort()
	return set
}

// outerTemplates finds GEN's Outer fusion opportunities: a multiplication
// whose output flows through element-wise operators into a multiply with a
// sparse driver. The whole chain (multiplication included) becomes one plan,
// extended upward through further element-wise non-termination operators.
func outerTemplates(g *dag.Graph, used map[int]bool, rule fusion.TermRule) []*fusion.Plan {
	var plans []*fusion.Plan
	reach := g.ReachableFromOutputs()
	for _, mm := range g.Nodes() {
		if mm.Op != dag.OpMatMul || used[mm.ID] || !reach[mm.ID] {
			continue
		}
		chain, mul := sparseDriverChain(mm, rule)
		if mul == nil {
			continue
		}
		members := map[int]*dag.Node{mm.ID: mm}
		for _, n := range chain {
			members[n.ID] = n
		}
		members[mul.ID] = mul
		// Include transposes feeding the multiplication's side inputs (the
		// BFO/RFO examples execute t(V) inside the fused operator).
		for _, in := range mm.Inputs {
			if in.Op == dag.OpTranspose && !used[in.ID] && !rule.IsTermination(in) {
				members[in.ID] = in
			}
		}
		// Grow upward through element-wise, non-termination consumers.
		top := mul
		for top.NumConsumers() == 1 && !rule.IsTermination(top) {
			c := top.Consumers()[0]
			if used[c.ID] || (c.Op != dag.OpUnary && c.Op != dag.OpBinary) {
				break
			}
			members[c.ID] = c
			top = c
		}
		p, err := fusion.NewPlan(top, members)
		if err != nil {
			continue
		}
		// The template is only worthwhile when sparsity exploitation
		// actually applies.
		if fusion.FindOuterMask(p) == nil {
			continue
		}
		for id := range p.Members {
			used[id] = true
		}
		plans = append(plans, p)
	}
	return plans
}

// sparseDriverChain walks up from a multiplication through single-consumer
// element-wise operators looking for a multiply with a sparse external
// operand of the multiplication's shape. Returns the intermediate chain and
// the multiply, or nil when the template does not match.
func sparseDriverChain(mm *dag.Node, rule fusion.TermRule) ([]*dag.Node, *dag.Node) {
	var chain []*dag.Node
	cur := mm
	for {
		if cur.NumConsumers() != 1 {
			return nil, nil
		}
		c := cur.Consumers()[0]
		if c.Op == dag.OpBinary && c.BinOp == matrix.Mul {
			for _, cand := range c.Inputs {
				if cand.Op == dag.OpInput && cand.Sparsity < fusion.OuterSparsityThreshold &&
					cand.Rows == c.Rows && cand.Cols == c.Cols {
					return chain, c
				}
			}
		}
		switch c.Op {
		case dag.OpUnary:
			chain = append(chain, c)
		case dag.OpBinary:
			// Continue only when the other operand is scalar-shaped or an
			// external leaf (keeps the chain a tree).
			other := c.Inputs[0]
			if other == cur {
				other = c.Inputs[1]
			}
			if !other.IsLeaf() && !other.IsScalarShaped() {
				return nil, nil
			}
			chain = append(chain, c)
		default:
			return nil, nil
		}
		if rule.IsTermination(c) {
			return nil, nil
		}
		cur = c
	}
}
