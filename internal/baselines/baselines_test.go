package baselines

import (
	"testing"

	"fuseme/internal/dag"
	"fuseme/internal/fusion"
	"fuseme/internal/lang"
)

func mustParse(t testing.TB, src string, inputs map[string]lang.InputDecl) *dag.Graph {
	t.Helper()
	g, err := lang.Parse(src, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func gnmfGraph(t testing.TB) *dag.Graph {
	return mustParse(t, `
U2 = U * (t(V) %*% X) / (t(V) %*% V %*% U)
V2 = V * (X %*% t(U)) / (V %*% (U %*% t(U)))
`, map[string]lang.InputDecl{
		"X": {Rows: 480_189, Cols: 17_770, Sparsity: 0.0118},
		"U": {Rows: 200, Cols: 17_770, Sparsity: 1},
		"V": {Rows: 480_189, Cols: 200, Sparsity: 1},
	})
}

func nmfGraph(t testing.TB) *dag.Graph {
	return mustParse(t, "O = X * log(U %*% t(V) + 1e-3)", map[string]lang.InputDecl{
		"X": {Rows: 100_000, Cols: 100_000, Sparsity: 0.001},
		"U": {Rows: 100_000, Cols: 2_000, Sparsity: 1},
		"V": {Rows: 100_000, Cols: 2_000, Sparsity: 1},
	})
}

func TestGENFusesOnlyElementwiseForGNMF(t *testing.T) {
	// Figure 1(c) / Section 6.4: for GNMF, SystemDS fuses only the two
	// element-wise operators (* and /) per update; every multiplication runs
	// standalone because X is not sparse enough for the Outer template
	// everywhere it would need to be.
	g := gnmfGraph(t)
	rule := fusion.RuleFor(g, 10<<30)
	set := GENGenerate(g, rule)
	if err := set.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, p := range set.Plans {
		if p.MainMM != nil && p.Size() > 1 {
			t.Errorf("GEN fused a multiplication with other operators: %v", p)
		}
		if p.MainMM == nil && p.Size() > 2 {
			t.Errorf("GEN cell chain too large: %v", p)
		}
	}
	// The two-element-wise chains exist.
	cells := 0
	for _, p := range set.Plans {
		if p.MainMM == nil && p.Size() == 2 {
			cells++
		}
	}
	if cells != 2 {
		t.Fatalf("found %d two-op cell chains, want 2 (one per factor update)", cells)
	}
}

func TestGENOuterTemplateNMF(t *testing.T) {
	// The NMF kernel has a sparse driver, so GEN fuses the multiplication
	// via the Outer template — the whole query becomes one fused operator.
	g := nmfGraph(t)
	rule := fusion.RuleFor(g, 10<<30)
	set := GENGenerate(g, rule)
	if err := set.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(set.Plans) != 1 {
		for _, p := range set.Plans {
			t.Logf("plan: %v", p)
		}
		t.Fatalf("%d plans, want 1", len(set.Plans))
	}
	p := set.Plans[0]
	if p.Classify() != fusion.Outer {
		t.Fatalf("classified %v, want Outer", p.Classify())
	}
	if fusion.FindOuterMask(p) == nil {
		t.Fatal("no outer mask on GEN's plan")
	}
}

func TestGENOuterRejectedForDenseDriver(t *testing.T) {
	g := mustParse(t, "O = X * log(U %*% t(V) + 1e-3)", map[string]lang.InputDecl{
		"X": {Rows: 10_000, Cols: 10_000, Sparsity: 0.9},
		"U": {Rows: 10_000, Cols: 200, Sparsity: 1},
		"V": {Rows: 10_000, Cols: 200, Sparsity: 1},
	})
	rule := fusion.RuleFor(g, 10<<30)
	set := GENGenerate(g, rule)
	for _, p := range set.Plans {
		if p.MainMM != nil && p.Size() > 1 {
			t.Fatalf("dense driver must not form an Outer template: %v", p)
		}
	}
}

func TestMatFastFoldsOnlyElementwise(t *testing.T) {
	g := gnmfGraph(t)
	rule := fusion.RuleFor(g, 10<<30)
	set := MatFastGenerate(g, rule)
	if err := set.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, p := range set.Plans {
		if p.MainMM != nil && p.Size() > 1 {
			t.Errorf("MatFast fused a multiplication: %v", p)
		}
	}
}

func TestDistMENoFusion(t *testing.T) {
	g := gnmfGraph(t)
	set := DistMEGenerate(g)
	if err := set.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, p := range set.Plans {
		if p.Size() != 1 {
			t.Errorf("DistME plan has %d members, want 1", p.Size())
		}
	}
}

func TestSetsAreTopologicallySorted(t *testing.T) {
	g := gnmfGraph(t)
	rule := fusion.RuleFor(g, 10<<30)
	for name, set := range map[string]fusion.Set{
		"gen":     GENGenerate(g, rule),
		"matfast": MatFastGenerate(g, rule),
		"distme":  DistMEGenerate(g),
	} {
		produced := map[int]bool{}
		for _, in := range g.InputNodes() {
			produced[in.ID] = true
		}
		for _, p := range set.Plans {
			for _, in := range p.ExternalInputs() {
				if in.Op == dag.OpScalar || in.Op == dag.OpInput {
					continue
				}
				if !produced[in.ID] {
					t.Errorf("%s: plan %v consumes node %d before it is produced", name, p, in.ID)
				}
			}
			produced[p.Root.ID] = true
		}
	}
}
