package cluster

import "time"

// TaskSpan is one completed sub-span recorded while a task body ran: a fetch,
// kernel, cache lookup or result send. Times are the recording process's
// monotonic wall clock.
type TaskSpan struct {
	Name  string
	Cat   string
	Start time.Time
	End   time.Time
}

// TaskTrace collects the sub-spans of one task execution. Like the Task that
// owns it, it is single-owner state: the task body records into it serially
// and the backend drains it after the body returns. A nil *TaskTrace absorbs
// every call, so untraced runs pay only a pointer check.
type TaskTrace struct {
	spans []TaskSpan
}

// noopEnd is the closer Begin hands out when tracing is off.
func noopEnd() {}

// Begin opens a sub-span and returns the func that closes it. Nil-safe.
func (tt *TaskTrace) Begin(name, cat string) func() {
	if tt == nil {
		return noopEnd
	}
	start := time.Now()
	return func() {
		tt.spans = append(tt.spans, TaskSpan{Name: name, Cat: cat, Start: start, End: time.Now()})
	}
}

// Spans returns the recorded sub-spans in completion order.
func (tt *TaskTrace) Spans() []TaskSpan {
	if tt == nil {
		return nil
	}
	return tt.spans
}

// SetTrace attaches a span collector to the task. Backends call it before
// running the task body when tracing is enabled; nil (the default) disables
// sub-span recording.
func (t *Task) SetTrace(tt *TaskTrace) { t.trace = tt }

// Trace returns the task's span collector; nil when tracing is off.
func (t *Task) Trace() *TaskTrace { return t.trace }
