package cluster

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestStatsView checks the structured projection: every Stats field lands in
// its group and the JSON shape matches what /debug/stats serves.
func TestStatsView(t *testing.T) {
	s := Stats{
		ConsolidationBytes: 100,
		AggregationBytes:   40,
		ExtraWireBytes:     7,
		Flops:              9000,
		Stages:             3,
		Tasks:              24,
		SimSeconds:         1.5,
		WallSeconds:        0.25,
		PeakTaskMemBytes:   2 << 20,
		MaxTaskFlops:       512,
	}
	v := s.View()
	if v.Wire.ConsolidationBytes != 100 || v.Wire.AggregationBytes != 40 || v.Wire.ExtraBytes != 7 {
		t.Errorf("wire = %+v", v.Wire)
	}
	if v.Wire.TotalCommBytes != s.TotalCommBytes() {
		t.Errorf("total comm = %d, want %d", v.Wire.TotalCommBytes, s.TotalCommBytes())
	}
	if v.Compute.Flops != 9000 || v.Compute.MaxTaskFlops != 512 {
		t.Errorf("compute = %+v", v.Compute)
	}
	if v.Scheduling.Stages != 3 || v.Scheduling.Tasks != 24 {
		t.Errorf("scheduling = %+v", v.Scheduling)
	}
	if v.Memory.PeakTaskBytes != 2<<20 || v.Memory.PeakTask != FormatBytes(2<<20) {
		t.Errorf("memory = %+v", v.Memory)
	}
	if v.Time.SimSeconds != 1.5 || v.Time.WallSeconds != 0.25 {
		t.Errorf("time = %+v", v.Time)
	}

	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"wire"`, `"compute"`, `"scheduling"`, `"memory"`, `"time"`,
		`"consolidation_bytes":100`, `"total_comm_bytes":140`, `"stages":3`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s: %s", key, data)
		}
	}
}
