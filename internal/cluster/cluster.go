// Package cluster implements the simulated distributed runtime the engines
// execute on. It stands in for the paper's Spark cluster (one coordinator +
// eight workers, 12 tasks per node, 1 Gbps Ethernet): tasks run as goroutines
// on a bounded pool, every block that moves between storage, the driver and a
// task is metered in bytes, per-task memory is tracked against the budget θt,
// and a simulated clock advances per execution stage by the paper's Eq. 2:
//
//	stageTime = max(stageBytes / (N * B̂n), stageFlops / (N * B̂c))
//
// because computation and communication overlap within a stage. Real local
// arithmetic still runs (and is verified against references in tests); only
// placement and the clock are simulated.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fuseme/internal/blockcache"
	"fuseme/internal/matrix"
	"fuseme/internal/parallel"
	"fuseme/internal/prefetch"
	"fuseme/internal/sched"
)

// ErrOutOfMemory is returned (wrapped) when an operator's estimated per-task
// memory exceeds the task budget. This is the O.O.M. of the paper's figures.
var ErrOutOfMemory = errors.New("task memory budget exceeded (O.O.M.)")

// ErrTimeout is returned (wrapped) when the simulated clock passes the
// configured limit. This is the T.O. (12 h in the paper) of the figures.
var ErrTimeout = errors.New("simulated time limit exceeded (T.O.)")

// errInjectedFailure marks failures produced by Config.InjectTaskFailure.
var errInjectedFailure = errors.New("injected task failure")

// Config describes the simulated cluster.
type Config struct {
	Nodes         int     // N: number of worker nodes
	TasksPerNode  int     // Tc: concurrent tasks per node
	TaskMemBytes  int64   // θt: memory budget per task
	NetBandwidth  float64 // B̂n: peak network bandwidth per node, bytes/s
	CompBandwidth float64 // B̂c: peak computation bandwidth per node, flop/s
	BlockSize     int     // block width/height in elements
	SimTimeLimit  float64 // simulated seconds before ErrTimeout; 0 disables
	TaskOverhead  float64 // simulated seconds of scheduling overhead per task wave

	// CacheBytes is the per-node block-cache budget for loop-invariant
	// inputs. Zero disables caching (the default), reproducing the uncached
	// runtime exactly. The effective budget is clamped to TaskMemBytes so
	// the cache respects the paper's per-task memory budget θt.
	CacheBytes int64

	// KernelThreads is the intra-task kernel thread count. Zero (the
	// default) auto-sizes the local goroutine pool to
	// min(NumCPU/slots, parallel.DefaultMaxThreads) without touching the
	// simulated cost model, so default simulated numbers stay
	// machine-independent. An explicit positive value both sizes the pool
	// and scales the modelled B̂c (see EffectiveCompBandwidth). Keep
	// KernelThreads x TasksPerNode at or below the node's core count:
	// oversubscribed kernel threads only add scheduler churn.
	KernelThreads int

	// Pipelined stage execution (on by default; see internal/prefetch and
	// the coordinator's task queues). DisablePipelining restores the strict
	// fetch → kernel → send barrier per task: no next-task prefetch, no
	// streamed result folding, no work-stealing. DisableStealing keeps
	// prefetch and streaming but pins every task to its home worker —
	// deterministic placement, which tests asserting exact per-worker cache
	// counts rely on. PrefetchBytes bounds how many input bytes a worker may
	// pull ahead for its next task: zero means the 64 MiB default, negative
	// disables prefetch alone; the effective budget is clamped to
	// TaskMemBytes so prefetched blocks respect θt like any task memory.
	DisablePipelining bool
	DisableStealing   bool
	PrefetchBytes     int64

	// Oversubscribe is how many waves of tasks per slot the planner targets
	// when sizing a stage. Zero or one (the default) sizes stages to the
	// slot count — every task in a stage starts at once, and plans are
	// identical to builds without the knob. Larger values over-decompose
	// each stage into Oversubscribe× more, smaller tasks, which is what
	// gives the pipelined runtime queue depth: a worker always has a "next
	// task" whose inputs it can prefetch behind the running kernel, and a
	// straggler's backlog is stealable. The cuboid parallelism floor
	// (P*Q*R >= N*Tc*waves) and the grid executors scale together so sim
	// and TCP runs decompose identically.
	Oversubscribe int

	// LearnedNetBandwidth/LearnedCompBandwidth are calibration-store
	// overrides for the cost model's B̂n/B̂c, in the same units as
	// NetBandwidth/CompBandwidth. Zero (the default) keeps the configured
	// constants. They influence ONLY plan costing (core.modelFor): the
	// simulated execution clock always runs on the configured constants, so
	// learning from measured stages can never feed back into the
	// measurements it learns from. LearnedCompBandwidth is already an
	// effective per-node rate (stages were measured under the session's
	// kernel-thread count), so it is NOT re-scaled by KernelThreads.
	LearnedNetBandwidth  float64
	LearnedCompBandwidth float64

	// MaxTaskRetries is how many times a failed task is re-attempted before
	// the stage fails (Spark's task retry). Zero means no retries.
	MaxTaskRetries int
	// InjectTaskFailure, when non-nil, is consulted before each task
	// attempt; returning true makes the attempt fail with a transient
	// error. Used by failure-injection tests to exercise retry paths.
	InjectTaskFailure func(taskID, attempt int) bool
}

// Default returns the paper's cluster shape (Section 6.1): 8 worker nodes,
// 12 tasks per node, 10 GB per task, 1 Gbps Ethernet (125 MB/s) and
// 546 GFLOPS per node, 1000x1000 blocks.
func Default() Config {
	return Config{
		Nodes:         8,
		TasksPerNode:  12,
		TaskMemBytes:  10 << 30,
		NetBandwidth:  125e6,
		CompBandwidth: 546e9,
		BlockSize:     1000,
		SimTimeLimit:  12 * 3600,
		// Spark launches one job per distributed operator; scheduling,
		// serialisation and shuffle setup cost on the order of a second per
		// task wave. Fusion's stage-count reduction is visible through this
		// constant (most prominently in the AutoEncoder comparison).
		TaskOverhead: 1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes = %d, must be positive", c.Nodes)
	case c.TasksPerNode <= 0:
		return fmt.Errorf("cluster: TasksPerNode = %d, must be positive", c.TasksPerNode)
	case c.TaskMemBytes <= 0:
		return fmt.Errorf("cluster: TaskMemBytes = %d, must be positive", c.TaskMemBytes)
	case c.NetBandwidth <= 0 || c.CompBandwidth <= 0:
		return fmt.Errorf("cluster: bandwidths must be positive")
	case c.BlockSize <= 0:
		return fmt.Errorf("cluster: BlockSize = %d, must be positive", c.BlockSize)
	case c.KernelThreads < 0:
		return fmt.Errorf("cluster: KernelThreads = %d, must be >= 0", c.KernelThreads)
	case c.Oversubscribe < 0:
		return fmt.Errorf("cluster: Oversubscribe = %d, must be >= 0", c.Oversubscribe)
	}
	return nil
}

// TotalSlots returns N * Tc, the maximum parallelism of the cluster.
func (c Config) TotalSlots() int { return c.Nodes * c.TasksPerNode }

// Waves returns the effective over-decomposition factor (>= 1).
func (c Config) Waves() int {
	if c.Oversubscribe > 1 {
		return c.Oversubscribe
	}
	return 1
}

// PlanSlots returns the task count the planner targets per stage:
// TotalSlots() times the over-decomposition factor.
func (c Config) PlanSlots() int { return c.TotalSlots() * c.Waves() }

// DefaultPrefetchBytes is the per-worker prefetch budget when
// Config.PrefetchBytes is zero.
const DefaultPrefetchBytes = 64 << 20

// EffectivePrefetchBytes resolves the prefetch byte budget: zero when
// pipelining (or prefetch alone) is disabled, otherwise PrefetchBytes —
// defaulted to DefaultPrefetchBytes — clamped to the per-task memory
// budget θt.
func (c Config) EffectivePrefetchBytes() int64 {
	if c.DisablePipelining || c.PrefetchBytes < 0 {
		return 0
	}
	b := c.PrefetchBytes
	if b == 0 {
		b = DefaultPrefetchBytes
	}
	if b > c.TaskMemBytes {
		b = c.TaskMemBytes
	}
	return b
}

// EffectiveCompBandwidth returns the modelled per-node compute bandwidth:
// B̂c scaled by the explicit kernel thread count. With KernelThreads zero
// (auto) it equals CompBandwidth exactly, keeping every default simulated
// number machine-independent — auto-sized local pools speed up wall-clock
// execution but never alter the model.
func (c Config) EffectiveCompBandwidth() float64 {
	if c.KernelThreads > 1 {
		return c.CompBandwidth * float64(c.KernelThreads)
	}
	return c.CompBandwidth
}

// Stats accumulates execution metrics across stages. All byte counts are the
// "amount of transferred data" the paper reports as communication cost.
type Stats struct {
	ConsolidationBytes int64   // matrix consolidation step: inputs to tasks
	AggregationBytes   int64   // matrix aggregation step: shuffled partials
	Flops              int64   // floating-point operations executed
	Stages             int     // distributed stages launched
	Tasks              int     // tasks launched across all stages
	SimSeconds         float64 // simulated elapsed time (Eq. 2 per stage)
	WallSeconds        float64 // real wall-clock time of local execution
	PeakTaskMemBytes   int64   // max per-task memory high-water mark
	MaxTaskFlops       int64   // heaviest single task (load-balance metric)

	// ExtraWireBytes is traffic measured by a real (remote) backend that has
	// no counterpart in the simulated communication model: co-partitioned
	// input blocks shipped to workers (local reads in a real deployment),
	// aggregated partials re-delivered through the coordinator, and final
	// result blocks returned to the driver. Always zero under simulation.
	ExtraWireBytes int64

	// Block-cache counters (zero unless Config.CacheBytes > 0). Hits are
	// fetches served from a node/worker-resident cache without touching the
	// wire; CacheSavedBytes is the in-memory size of those blocks (the
	// traffic the cache avoided).
	CacheHits       int64
	CacheMisses     int64
	CacheEvictions  int64
	CacheSavedBytes int64

	// Pipelined-execution counters (zero with DisablePipelining). A
	// prefetch is an input block pulled for a task's queue successor while
	// the current kernel runs; a steal is a queued task executed by a
	// worker other than its home. The seconds counters decompose task time:
	// FetchSeconds is wire-wait inside task bodies, PrefetchSeconds is wire
	// time hidden under kernels, TaskSeconds total task wall time. The
	// simulated backend models prefetch counts (identically to TCP) but
	// reports no seconds — its clock is the Eq. 2 model, not wall time.
	PrefetchBlocks  int64
	PrefetchBytes   int64
	StealTasks      int64
	FetchSeconds    float64
	PrefetchSeconds float64
	TaskSeconds     float64
}

// OverlapRatio is the fraction of block-transfer time hidden under kernel
// execution by prefetching: PrefetchSeconds / (PrefetchSeconds +
// FetchSeconds). Zero when nothing transferred (or under simulation, which
// reports no wall-clock phase times).
func (s Stats) OverlapRatio() float64 {
	total := s.PrefetchSeconds + s.FetchSeconds
	if total <= 0 {
		return 0
	}
	return s.PrefetchSeconds / total
}

// TotalCommBytes is consolidation plus aggregation traffic.
func (s Stats) TotalCommBytes() int64 { return s.ConsolidationBytes + s.AggregationBytes }

// StatsView is the structured JSON projection of Stats served by the
// /debug/stats observability endpoint and embedded in Session reports.
type StatsView struct {
	Wire struct {
		ConsolidationBytes int64 `json:"consolidation_bytes"`
		AggregationBytes   int64 `json:"aggregation_bytes"`
		ExtraBytes         int64 `json:"extra_bytes"`
		TotalCommBytes     int64 `json:"total_comm_bytes"`
	} `json:"wire"`
	Compute struct {
		Flops        int64 `json:"flops"`
		MaxTaskFlops int64 `json:"max_task_flops"`
	} `json:"compute"`
	Scheduling struct {
		Stages int `json:"stages"`
		Tasks  int `json:"tasks"`
	} `json:"scheduling"`
	Memory struct {
		PeakTaskBytes int64  `json:"peak_task_bytes"`
		PeakTask      string `json:"peak_task"`
	} `json:"memory"`
	Cache struct {
		Hits       int64 `json:"hits"`
		Misses     int64 `json:"misses"`
		Evictions  int64 `json:"evictions"`
		SavedBytes int64 `json:"saved_bytes"`
	} `json:"cache"`
	Pipeline struct {
		PrefetchBlocks  int64   `json:"prefetch_blocks"`
		PrefetchBytes   int64   `json:"prefetch_bytes"`
		StealTasks      int64   `json:"steal_tasks"`
		FetchSeconds    float64 `json:"fetch_seconds"`
		PrefetchSeconds float64 `json:"prefetch_seconds"`
		TaskSeconds     float64 `json:"task_seconds"`
		OverlapRatio    float64 `json:"overlap_ratio"`
	} `json:"pipeline"`
	Time struct {
		SimSeconds  float64 `json:"sim_seconds"`
		WallSeconds float64 `json:"wall_seconds"`
	} `json:"time"`
}

// View returns the structured projection of s.
func (s Stats) View() StatsView {
	var v StatsView
	v.Wire.ConsolidationBytes = s.ConsolidationBytes
	v.Wire.AggregationBytes = s.AggregationBytes
	v.Wire.ExtraBytes = s.ExtraWireBytes
	v.Wire.TotalCommBytes = s.TotalCommBytes()
	v.Compute.Flops = s.Flops
	v.Compute.MaxTaskFlops = s.MaxTaskFlops
	v.Scheduling.Stages = s.Stages
	v.Scheduling.Tasks = s.Tasks
	v.Memory.PeakTaskBytes = s.PeakTaskMemBytes
	v.Memory.PeakTask = FormatBytes(s.PeakTaskMemBytes)
	v.Cache.Hits = s.CacheHits
	v.Cache.Misses = s.CacheMisses
	v.Cache.Evictions = s.CacheEvictions
	v.Cache.SavedBytes = s.CacheSavedBytes
	v.Pipeline.PrefetchBlocks = s.PrefetchBlocks
	v.Pipeline.PrefetchBytes = s.PrefetchBytes
	v.Pipeline.StealTasks = s.StealTasks
	v.Pipeline.FetchSeconds = s.FetchSeconds
	v.Pipeline.PrefetchSeconds = s.PrefetchSeconds
	v.Pipeline.TaskSeconds = s.TaskSeconds
	v.Pipeline.OverlapRatio = s.OverlapRatio()
	v.Time.SimSeconds = s.SimSeconds
	v.Time.WallSeconds = s.WallSeconds
	return v
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ConsolidationBytes += other.ConsolidationBytes
	s.AggregationBytes += other.AggregationBytes
	s.Flops += other.Flops
	s.Stages += other.Stages
	s.Tasks += other.Tasks
	s.SimSeconds += other.SimSeconds
	s.WallSeconds += other.WallSeconds
	s.ExtraWireBytes += other.ExtraWireBytes
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.CacheEvictions += other.CacheEvictions
	s.CacheSavedBytes += other.CacheSavedBytes
	s.PrefetchBlocks += other.PrefetchBlocks
	s.PrefetchBytes += other.PrefetchBytes
	s.StealTasks += other.StealTasks
	s.FetchSeconds += other.FetchSeconds
	s.PrefetchSeconds += other.PrefetchSeconds
	s.TaskSeconds += other.TaskSeconds
	if other.PeakTaskMemBytes > s.PeakTaskMemBytes {
		s.PeakTaskMemBytes = other.PeakTaskMemBytes
	}
	if other.MaxTaskFlops > s.MaxTaskFlops {
		s.MaxTaskFlops = other.MaxTaskFlops
	}
}

// Cluster is a simulated cluster instance. It is safe for use by one
// execution at a time; stats reads are safe concurrently with stages.
type Cluster struct {
	cfg Config

	// pool is the shared intra-task kernel pool handed to every task this
	// cluster runs. Sized against the process's real local concurrency
	// (min(TotalSlots, GOMAXPROCS)), not the simulated slot count, so
	// kernel threads x local slots never oversubscribes the machine.
	pool *parallel.Pool

	mu    sync.Mutex
	stats Stats

	// caches holds one block cache per simulated node (empty when caching
	// is disabled). A task's node is taskID % Nodes — deterministic, so the
	// TCP runtime can reproduce the same placement with real workers.
	caches []*blockcache.Cache

	// sched gates task dispatch. By default each cluster owns a private
	// scheduler sized like the old inline worker pool
	// (min(TotalSlots, GOMAXPROCS)); the serve daemon installs one shared
	// scheduler across many clusters so concurrent plans interleave fairly.
	sched *sched.Scheduler
	// tenant tags this cluster's stages for the (shared) scheduler.
	tenantMu     sync.Mutex
	tenant       string
	tenantWeight int

	// stageSeq is the stage-generation counter driving cache visibility:
	// blocks cached during generation g only become hits in generations > g,
	// making hit counts independent of in-stage scheduling order. It is
	// never reset (ResetStats keeps it), so caching works across queries.
	stageSeq atomic.Uint64

	// hist is the prefetch fetch-history for pipelined execution: each
	// stage's first run records per-task fetch lists, re-runs replay them as
	// prefetch hints. Persistent across queries, like the caches.
	hist *prefetch.History
}

// New creates a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, hist: prefetch.NewHistory()}
	localSlots := cfg.TotalSlots()
	if n := runtime.GOMAXPROCS(0); n < localSlots {
		localSlots = n
	}
	c.pool = parallel.New(parallel.Resolve(cfg.KernelThreads, localSlots), localSlots)
	c.sched = sched.New(localSlots)
	if cfg.CacheBytes > 0 {
		budget := cfg.CacheBytes
		if budget > cfg.TaskMemBytes {
			budget = cfg.TaskMemBytes
		}
		c.caches = make([]*blockcache.Cache, cfg.Nodes)
		for i := range c.caches {
			c.caches[i] = blockcache.New(budget)
		}
	}
	return c, nil
}

// MustNew is New for known-good configs (tests, examples).
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// KernelPool returns the shared intra-task kernel pool (nil when kernels run
// serially). Observability layers read its Stats; tasks receive it via
// Task.Pool.
func (c *Cluster) KernelPool() *parallel.Pool { return c.pool }

// Stats returns a snapshot of accumulated metrics.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats clears accumulated metrics (between experiments).
func (c *Cluster) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// Close releases runtime resources. The simulated cluster holds none; the
// method exists so *Cluster satisfies the rt.Runtime interface.
func (c *Cluster) Close() error { return nil }

// StageCacheGen returns the generation the next stage will run at. The
// executor reads it when building a stage so tasks can distinguish blocks
// cached by earlier stages (hit-visible) from ones their own stage inserts.
func (c *Cluster) StageCacheGen() uint64 { return c.stageSeq.Load() + 1 }

// NextStageGen advances the stage-generation counter and returns the new
// value. RunStage calls it internally; backends that execute stages without
// going through RunStage (the TCP coordinator) call it per spec stage.
func (c *Cluster) NextStageGen() uint64 { return c.stageSeq.Add(1) }

// PrefetchHistory returns the cluster's prefetch fetch-history. The
// executor's simulated prefetch model records into and replays from it;
// the TCP coordinator keeps its own (fed from worker fetch reports).
func (c *Cluster) PrefetchHistory() *prefetch.History { return c.hist }

// TaskCache returns the block cache of the node that task taskID runs on,
// or nil when caching is disabled.
func (c *Cluster) TaskCache(taskID int) *blockcache.Cache {
	if len(c.caches) == 0 {
		return nil
	}
	return c.caches[taskID%len(c.caches)]
}

// InvalidateStaleEpochs drops cached blocks of node whose epoch differs from
// epoch on every simulated node. Harmless but wasteful entries would never
// be hit anyway (epochs are globally unique), so this is the sim-side
// analogue of the coordinator's invalidation push: it frees budget.
func (c *Cluster) InvalidateStaleEpochs(node int, epoch uint64) {
	for _, cache := range c.caches {
		cache.InvalidateStale(node, epoch)
	}
}

// AddStats folds externally measured metrics (for example a remote backend's
// wire accounting) into the cluster's totals.
func (c *Cluster) AddStats(s Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Add(s)
}

// CheckAdmission rejects an operator whose estimated per-task memory exceeds
// the budget, wrapping ErrOutOfMemory. Engines with no partitioning knob
// (BFO, MatFast's folded operators) fail here, as in the paper.
func (c *Cluster) CheckAdmission(estTaskMemBytes int64, what string) error {
	if estTaskMemBytes > c.cfg.TaskMemBytes {
		return fmt.Errorf("%s needs %s per task, budget %s: %w",
			what, FormatBytes(estTaskMemBytes), FormatBytes(c.cfg.TaskMemBytes), ErrOutOfMemory)
	}
	return nil
}

// Task is the handle a stage function uses to meter its data movement,
// computation and memory. Not safe for concurrent use (each task owns one).
type Task struct {
	ID int

	// pool is the kernel pool the task's local linear algebra may fan out
	// on; nil means serial kernels. Set by the backend that runs the task.
	pool *parallel.Pool

	// trace collects the task body's sub-spans (fetch/kernel/cache/send);
	// nil means tracing is off. Set by the backend that runs the task.
	trace *TaskTrace

	consolidationBytes int64
	aggregationBytes   int64
	flops              int64
	memBytes           int64
	memPeak            int64

	cacheHits       int64
	cacheMisses     int64
	cacheEvictions  int64
	cacheSavedBytes int64

	prefetchBlocks int64
	prefetchBytes  int64
}

// SetPool hands the task a kernel pool for intra-task parallelism. Backends
// call it before running the task body.
func (t *Task) SetPool(p *parallel.Pool) { t.pool = p }

// Pool returns the task's kernel pool; nil means serial kernels.
func (t *Task) Pool() *parallel.Pool { return t.pool }

// FetchBlock meters a block moved to this task during matrix consolidation
// and counts it against the task's live memory.
func (t *Task) FetchBlock(m matrix.Mat) {
	if m == nil {
		return
	}
	n := m.SizeBytes()
	t.consolidationBytes += n
	t.GrowMem(n)
}

// FetchBytes meters raw consolidation traffic (for metadata or pre-sized
// estimates) without a concrete block.
func (t *Task) FetchBytes(n int64) {
	t.consolidationBytes += n
	t.GrowMem(n)
}

// SendBlock meters a partial-result block shuffled out of this task during
// matrix aggregation.
func (t *Task) SendBlock(m matrix.Mat) {
	if m == nil {
		return
	}
	t.aggregationBytes += m.SizeBytes()
}

// SendBytes meters raw aggregation traffic.
func (t *Task) SendBytes(n int64) { t.aggregationBytes += n }

// AddFlops meters floating-point work executed by this task.
func (t *Task) AddFlops(n int64) { t.flops += n }

// GrowMem increases the task's live-memory estimate and updates its peak.
func (t *Task) GrowMem(n int64) {
	t.memBytes += n
	if t.memBytes > t.memPeak {
		t.memPeak = t.memBytes
	}
}

// ShrinkMem decreases the live-memory estimate (a block was released).
func (t *Task) ShrinkMem(n int64) { t.memBytes -= n }

// CacheHit meters a cache-eligible fetch served from the node-resident block
// cache: no wire traffic, but the block still occupies task memory (exactly
// like a colocated read). savedBytes is the consolidation-class traffic the
// hit avoided — zero for colocated inputs, which never ship in the simulated
// model, so CacheSavedBytes exactly equals the consolidation-byte drop
// versus an uncached run on both backends.
func (t *Task) CacheHit(blockBytes, savedBytes int64) {
	t.cacheHits++
	t.cacheSavedBytes += savedBytes
	t.GrowMem(blockBytes)
}

// CacheMiss meters a cache-eligible fetch that had to ship the block.
func (t *Task) CacheMiss() { t.cacheMisses++ }

// AddCacheEvictions meters entries the task's insertions evicted.
func (t *Task) AddCacheEvictions(n int) { t.cacheEvictions += int64(n) }

// AddPrefetch meters input blocks pulled ahead for this task's queue
// successor while its own kernel ran (or, under simulation, blocks the
// model determined would have been pulled ahead).
func (t *Task) AddPrefetch(blocks, bytes int64) {
	t.prefetchBlocks += blocks
	t.prefetchBytes += bytes
}

// PrefetchCounters returns the task's prefetch metering.
func (t *Task) PrefetchCounters() (blocks, bytes int64) {
	return t.prefetchBlocks, t.prefetchBytes
}

// Counters returns the task's accumulated metering, for backends that fold
// task metrics into stage statistics outside RunStage (the remote runtime's
// workers report these back to their coordinator).
func (t *Task) Counters() (consolidationBytes, aggregationBytes, flops, memPeakBytes int64) {
	return t.consolidationBytes, t.aggregationBytes, t.flops, t.memPeak
}

// CacheCounters returns the task's block-cache metering.
func (t *Task) CacheCounters() (hits, misses, evictions, savedBytes int64) {
	return t.cacheHits, t.cacheMisses, t.cacheEvictions, t.cacheSavedBytes
}

// SetScheduler installs a shared task-dispatch scheduler (nil restores the
// cluster's private one is not supported — pass a non-nil scheduler). Call
// before running stages; the serve daemon uses one scheduler across many
// clusters so tasks of concurrent plans interleave by weighted round-robin.
func (c *Cluster) SetScheduler(s *sched.Scheduler) {
	if s == nil {
		return
	}
	c.tenantMu.Lock()
	c.sched = s
	c.tenantMu.Unlock()
}

// SetTenant tags this cluster's subsequent stages with a tenant name and
// scheduling weight for the (shared) dispatch scheduler.
func (c *Cluster) SetTenant(name string, weight int) {
	c.tenantMu.Lock()
	c.tenant, c.tenantWeight = name, weight
	c.tenantMu.Unlock()
}

// schedulerTag returns the dispatch scheduler and the tenant tag to run
// stages under.
func (c *Cluster) schedulerTag() (*sched.Scheduler, string, int) {
	c.tenantMu.Lock()
	defer c.tenantMu.Unlock()
	return c.sched, c.tenant, c.tenantWeight
}

// RunStage executes numTasks tasks as one distributed stage. fn runs once
// per task (possibly concurrently, bounded by the dispatch scheduler's slot
// count — by default min(TotalSlots, GOMAXPROCS)); task metrics are folded
// into the cluster stats and the simulated clock advances per Eq. 2. The
// first task error aborts the stage: no further task starts and the error is
// returned once in-flight tasks finish. A simulated-time overrun returns a
// wrapped ErrTimeout.
func (c *Cluster) RunStage(name string, numTasks int, fn func(t *Task) error) error {
	if numTasks < 0 {
		return fmt.Errorf("cluster: stage %q: negative task count", name)
	}
	start := time.Now()
	c.stageSeq.Add(1)
	tasks := make([]Task, numTasks)
	scheduler, tenant, weight := c.schedulerTag()
	err := scheduler.RunTasks(tenant, weight, numTasks, func(i int) error {
		var err error
		for attempt := 0; ; attempt++ {
			// A retried task restarts with clean metering: the failed
			// attempt's partial work is discarded, exactly as a re-executed
			// Spark task recomputes its partition.
			tasks[i] = Task{ID: i, pool: c.pool}
			if c.cfg.InjectTaskFailure != nil && c.cfg.InjectTaskFailure(i, attempt) {
				err = errInjectedFailure
			} else {
				err = fn(&tasks[i])
			}
			if err == nil || attempt >= c.cfg.MaxTaskRetries {
				break
			}
		}
		if err != nil {
			return fmt.Errorf("stage %q task %d: %w", name, i, err)
		}
		return nil
	})
	if err != nil {
		return err
	}

	var stage Stats
	stage.Stages = 1
	stage.Tasks = numTasks
	for i := range tasks {
		stage.ConsolidationBytes += tasks[i].consolidationBytes
		stage.AggregationBytes += tasks[i].aggregationBytes
		stage.Flops += tasks[i].flops
		stage.CacheHits += tasks[i].cacheHits
		stage.CacheMisses += tasks[i].cacheMisses
		stage.CacheEvictions += tasks[i].cacheEvictions
		stage.CacheSavedBytes += tasks[i].cacheSavedBytes
		stage.PrefetchBlocks += tasks[i].prefetchBlocks
		stage.PrefetchBytes += tasks[i].prefetchBytes
		if tasks[i].memPeak > stage.PeakTaskMemBytes {
			stage.PeakTaskMemBytes = tasks[i].memPeak
		}
		if tasks[i].flops > stage.MaxTaskFlops {
			stage.MaxTaskFlops = tasks[i].flops
		}
	}
	bytes := float64(stage.ConsolidationBytes + stage.AggregationBytes)
	n := float64(c.cfg.Nodes)
	stage.SimSeconds = maxf(bytes/(n*c.cfg.NetBandwidth), float64(stage.Flops)/(n*c.cfg.EffectiveCompBandwidth()))
	if c.cfg.TaskOverhead > 0 && numTasks > 0 {
		waves := (numTasks + c.cfg.TotalSlots() - 1) / c.cfg.TotalSlots()
		stage.SimSeconds += float64(waves) * c.cfg.TaskOverhead
	}
	stage.WallSeconds = time.Since(start).Seconds()

	c.mu.Lock()
	c.stats.Add(stage)
	over := c.cfg.SimTimeLimit > 0 && c.stats.SimSeconds > c.cfg.SimTimeLimit
	total := c.stats.SimSeconds
	c.mu.Unlock()
	if over {
		return fmt.Errorf("stage %q: simulated time %.1fs exceeds limit %.1fs: %w",
			name, total, c.cfg.SimTimeLimit, ErrTimeout)
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FormatBytes renders a byte count with a binary-prefix unit.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
