package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fuseme/internal/matrix"
)

func testConfig() Config {
	cfg := Default()
	cfg.SimTimeLimit = 0
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Nodes: -1, TasksPerNode: 1, TaskMemBytes: 1, NetBandwidth: 1, CompBandwidth: 1, BlockSize: 1},
		{Nodes: 1, TasksPerNode: 0, TaskMemBytes: 1, NetBandwidth: 1, CompBandwidth: 1, BlockSize: 1},
		{Nodes: 1, TasksPerNode: 1, TaskMemBytes: 0, NetBandwidth: 1, CompBandwidth: 1, BlockSize: 1},
		{Nodes: 1, TasksPerNode: 1, TaskMemBytes: 1, NetBandwidth: 0, CompBandwidth: 1, BlockSize: 1},
		{Nodes: 1, TasksPerNode: 1, TaskMemBytes: 1, NetBandwidth: 1, CompBandwidth: 1, BlockSize: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	cfg := Default()
	if cfg.Nodes != 8 || cfg.TasksPerNode != 12 {
		t.Fatalf("default cluster %d nodes x %d tasks", cfg.Nodes, cfg.TasksPerNode)
	}
	if cfg.TotalSlots() != 96 {
		t.Fatalf("TotalSlots = %d", cfg.TotalSlots())
	}
	if cfg.TaskMemBytes != 10<<30 {
		t.Fatalf("θt = %d", cfg.TaskMemBytes)
	}
}

func TestRunStageMetering(t *testing.T) {
	c := MustNew(testConfig())
	blk := matrix.RandomDense(10, 10, 0, 1, 1) // 800 bytes
	err := c.RunStage("test", 4, func(task *Task) error {
		task.FetchBlock(blk)
		task.AddFlops(1000)
		task.SendBlock(blk)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.ConsolidationBytes != 4*800 {
		t.Fatalf("consolidation = %d", s.ConsolidationBytes)
	}
	if s.AggregationBytes != 4*800 {
		t.Fatalf("aggregation = %d", s.AggregationBytes)
	}
	if s.TotalCommBytes() != 8*800 {
		t.Fatalf("total = %d", s.TotalCommBytes())
	}
	if s.Flops != 4000 {
		t.Fatalf("flops = %d", s.Flops)
	}
	if s.Stages != 1 || s.Tasks != 4 {
		t.Fatalf("stages=%d tasks=%d", s.Stages, s.Tasks)
	}
	if s.PeakTaskMemBytes != 800 {
		t.Fatalf("peak mem = %d", s.PeakTaskMemBytes)
	}
	if s.SimSeconds <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestSimTimeFollowsEq2(t *testing.T) {
	cfg := testConfig()
	cfg.TaskOverhead = 0
	c := MustNew(cfg)
	// Pure communication stage.
	const bytes = int64(1 << 30)
	if err := c.RunStage("comm", 1, func(task *Task) error {
		task.FetchBytes(bytes)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := float64(bytes) / (float64(cfg.Nodes) * cfg.NetBandwidth)
	if got := c.Stats().SimSeconds; got < want*0.999 || got > want*1.001 {
		t.Fatalf("comm sim time %v, want %v", got, want)
	}
	c.ResetStats()
	// Pure computation stage.
	const flops = int64(1e12)
	if err := c.RunStage("comp", 1, func(task *Task) error {
		task.AddFlops(flops)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want = float64(flops) / (float64(cfg.Nodes) * cfg.CompBandwidth)
	if got := c.Stats().SimSeconds; got < want*0.999 || got > want*1.001 {
		t.Fatalf("comp sim time %v, want %v", got, want)
	}
	c.ResetStats()
	// Overlap: the max dominates, not the sum.
	if err := c.RunStage("both", 1, func(task *Task) error {
		task.FetchBytes(bytes)
		task.AddFlops(flops)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	commT := float64(bytes) / (float64(cfg.Nodes) * cfg.NetBandwidth)
	compT := float64(flops) / (float64(cfg.Nodes) * cfg.CompBandwidth)
	want = commT
	if compT > want {
		want = compT
	}
	if got := c.Stats().SimSeconds; got < want*0.999 || got > want*1.001 {
		t.Fatalf("overlap sim time %v, want max %v", got, want)
	}
}

func TestTaskWaveOverhead(t *testing.T) {
	cfg := testConfig()
	cfg.TaskOverhead = 1.0
	c := MustNew(cfg)
	// 2 waves at 96 slots: 97 tasks.
	if err := c.RunStage("waves", 97, func(task *Task) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SimSeconds; got < 2 || got > 2.001 {
		t.Fatalf("overhead sim time %v, want 2", got)
	}
}

func TestRunStageErrorPropagates(t *testing.T) {
	c := MustNew(testConfig())
	boom := errors.New("boom")
	err := c.RunStage("fail", 8, func(task *Task) error {
		if task.ID == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "task 3") {
		t.Fatalf("error lacks task id: %v", err)
	}
}

func TestRunStageAllTasksRun(t *testing.T) {
	c := MustNew(testConfig())
	var count atomic.Int64
	seen := make([]atomic.Bool, 100)
	if err := c.RunStage("count", 100, func(task *Task) error {
		count.Add(1)
		if seen[task.ID].Swap(true) {
			return fmt.Errorf("task %d ran twice", task.ID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d tasks", count.Load())
	}
}

func TestCheckAdmission(t *testing.T) {
	cfg := testConfig()
	cfg.TaskMemBytes = 1000
	c := MustNew(cfg)
	if err := c.CheckAdmission(999, "op"); err != nil {
		t.Fatal(err)
	}
	err := c.CheckAdmission(1001, "broadcast of U")
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "broadcast of U") {
		t.Fatalf("error lacks context: %v", err)
	}
}

func TestSimTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.SimTimeLimit = 0.001
	cfg.TaskOverhead = 0
	c := MustNew(cfg)
	err := c.RunStage("slow", 1, func(task *Task) error {
		task.FetchBytes(1 << 40)
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestMemHighWaterMark(t *testing.T) {
	c := MustNew(testConfig())
	if err := c.RunStage("mem", 1, func(task *Task) error {
		task.GrowMem(100)
		task.GrowMem(200)
		task.ShrinkMem(250)
		task.GrowMem(10)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().PeakTaskMemBytes; got != 300 {
		t.Fatalf("peak = %d, want 300", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ConsolidationBytes: 1, AggregationBytes: 2, Flops: 3, Stages: 1, Tasks: 4, SimSeconds: 5, PeakTaskMemBytes: 10}
	b := Stats{ConsolidationBytes: 10, AggregationBytes: 20, Flops: 30, Stages: 2, Tasks: 40, SimSeconds: 50, PeakTaskMemBytes: 5}
	a.Add(b)
	if a.ConsolidationBytes != 11 || a.AggregationBytes != 22 || a.Flops != 33 ||
		a.Stages != 3 || a.Tasks != 44 || a.SimSeconds != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.PeakTaskMemBytes != 10 {
		t.Fatalf("peak should take max, got %d", a.PeakTaskMemBytes)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(testConfig())
	_ = c.RunStage("s", 1, func(task *Task) error { task.AddFlops(5); return nil })
	c.ResetStats()
	if s := c.Stats(); s.Flops != 0 || s.Stages != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:      "512 B",
		2048:     "2.0 KiB",
		3 << 20:  "3.0 MiB",
		10 << 30: "10.0 GiB",
		1 << 40:  "1.0 TiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRunStageZeroTasks(t *testing.T) {
	c := MustNew(testConfig())
	if err := c.RunStage("empty", 0, func(task *Task) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Stages != 1 {
		t.Fatal("empty stage not recorded")
	}
}

func TestTaskRetrySucceedsAfterTransientFailures(t *testing.T) {
	cfg := testConfig()
	cfg.MaxTaskRetries = 3
	failuresLeft := map[int]int{2: 2, 5: 1} // task 2 fails twice, task 5 once
	var mu sync.Mutex
	cfg.InjectTaskFailure = func(taskID, attempt int) bool {
		mu.Lock()
		defer mu.Unlock()
		if failuresLeft[taskID] > 0 {
			failuresLeft[taskID]--
			return true
		}
		return false
	}
	c := MustNew(cfg)
	var ran atomic.Int64
	if err := c.RunStage("retry", 8, func(task *Task) error {
		ran.Add(1)
		task.AddFlops(10)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("fn ran %d times, want 8 (injected attempts bypass fn)", ran.Load())
	}
	// Metering counts only successful attempts.
	if got := c.Stats().Flops; got != 80 {
		t.Fatalf("flops = %d, want 80", got)
	}
}

func TestTaskRetryExhaustedFailsStage(t *testing.T) {
	cfg := testConfig()
	cfg.MaxTaskRetries = 2
	cfg.InjectTaskFailure = func(taskID, attempt int) bool { return taskID == 1 }
	c := MustNew(cfg)
	err := c.RunStage("doomed", 4, func(task *Task) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "task 1") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("err should mention the injected failure: %v", err)
	}
}

func TestRetriedTaskMeteringIsClean(t *testing.T) {
	// A function that fails on its first real attempt after metering some
	// bytes must not leak them into stage stats.
	cfg := testConfig()
	cfg.MaxTaskRetries = 1
	c := MustNew(cfg)
	attempts := make([]atomic.Int64, 4)
	if err := c.RunStage("clean", 4, func(task *Task) error {
		if attempts[task.ID].Add(1) == 1 && task.ID == 0 {
			task.FetchBytes(1_000_000) // metered, then the attempt fails
			return errors.New("flaky")
		}
		task.FetchBytes(100)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().ConsolidationBytes; got != 400 {
		t.Fatalf("consolidation = %d, want 400 (failed attempt discarded)", got)
	}
}
