// Package blockcache implements the worker-resident block cache for
// loop-invariant inputs: a byte-budgeted LRU keyed by (node, epoch, block
// coordinate). Both runtimes share this one implementation — the simulated
// cluster keeps one Cache per simulated node, the TCP worker keeps one per
// process — so eviction order, budget enforcement and hit accounting conform
// by construction.
//
// Correctness rests on two properties:
//
//   - Epoch keying: block.Matrix epochs are globally unique and bumped on
//     every mutation, so a stale entry can never match a fresh fetch key.
//     Invalidation (InvalidateStale) is therefore a space optimisation, not
//     a correctness requirement.
//
//   - Generation visibility: entries inserted during stage generation g only
//     become hit-visible to stages with a generation > g. Tasks of one stage
//     race to populate the cache, but none of them can observe another's
//     insertions, which makes per-stage hit counts deterministic regardless
//     of scheduling order.
package blockcache

import (
	"container/list"
	"sync"

	"fuseme/internal/matrix"
)

// Key addresses one cached block: the DAG node it belongs to, the content
// epoch of the bound matrix, and the block-grid coordinate.
type Key struct {
	Node  int
	Epoch uint64
	BI    int
	BJ    int
}

type entry struct {
	key   Key
	blk   matrix.Mat
	bytes int64
	gen   uint64 // stage generation the entry was inserted in
}

// Stats is a snapshot of a cache's counters.
type Stats struct {
	Hits, Misses, Evictions int64
	ResidentBytes           int64
}

// Cache is a mutex-guarded LRU over block contents with a byte budget.
// A budget <= 0 disables the cache entirely (every Get misses, Put is a
// no-op), so a zero-configured runtime behaves exactly as before.
type Cache struct {
	mu     sync.Mutex
	budget int64
	lru    *list.List // front = most recently used; values are *entry
	items  map[Key]*list.Element
	bytes  int64

	hits, misses, evictions int64
}

// New returns a cache with the given byte budget.
func New(budget int64) *Cache {
	return &Cache{budget: budget, lru: list.New(), items: make(map[Key]*list.Element)}
}

// Get returns the cached block for k if it was inserted in a generation
// strictly before gen. A nil block is a valid cached value (an all-zero
// block), so the boolean carries the hit/miss outcome. Hits refresh LRU
// recency; misses are not counted here (the caller counts a miss only when
// it actually fetched something) — Get only counts hits.
func (c *Cache) Get(k Key, gen uint64) (matrix.Mat, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.gen >= gen {
		// Inserted by a concurrent task of the same (or a later) stage:
		// invisible, so every task of a stage sees the same cache state.
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.blk, true
}

// Contains reports whether k is resident and hit-visible at generation gen
// without touching the LRU order or the hit/miss counters. Prefetch
// admission uses it to skip already-cached blocks: a passive peek, so
// probing for residency never perturbs eviction behaviour relative to a
// run without prefetch.
func (c *Cache) Contains(k Key, gen uint64) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	return el.Value.(*entry).gen < gen
}

// Put inserts blk under k, charging bytes against the budget and evicting
// least-recently-used entries as needed. It returns whether the entry was
// added and the keys evicted to make room. Entries larger than the whole
// budget are not cached. Re-putting an existing key refreshes its recency
// and generation but never double-charges bytes.
func (c *Cache) Put(k Key, blk matrix.Mat, bytes int64, gen uint64) (added bool, evicted []Key) {
	if c == nil || c.budget <= 0 || bytes > c.budget || bytes < 0 {
		return false, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		// Same key means same content (epochs are unique); keep the original
		// generation so the first insertion wins visibility.
		el.Value.(*entry).blk = blk
		c.lru.MoveToFront(el)
		return false, nil
	}
	for c.bytes+bytes > c.budget {
		evicted = append(evicted, c.evictOldest())
	}
	el := c.lru.PushFront(&entry{key: k, blk: blk, bytes: bytes, gen: gen})
	c.items[k] = el
	c.bytes += bytes
	return true, evicted
}

// evictOldest removes the LRU entry and returns its key. Caller holds mu and
// guarantees the list is non-empty (budget > 0 implies at least one entry
// whenever bytes > 0).
func (c *Cache) evictOldest() Key {
	el := c.lru.Back()
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
	c.evictions++
	return e.key
}

// CountMiss records one miss. The caller invokes it after a Get miss that
// led to a real fetch, keeping the miss count comparable across backends
// (both only count fetches that shipped an existing block).
func (c *Cache) CountMiss() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// InvalidateStale drops every entry of the given node whose epoch differs
// from epoch, returning the dropped keys. epoch 0 drops all entries of the
// node. Dropped entries do not count as evictions (they are invalidations,
// not budget pressure).
func (c *Cache) InvalidateStale(node int, epoch uint64) []Key {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var dropped []Key
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Node == node && (epoch == 0 || e.key.Epoch != epoch) {
			c.lru.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.bytes
			dropped = append(dropped, e.key)
		}
		el = next
	}
	return dropped
}

// ResidentBytes returns the bytes currently charged against the budget.
func (c *Cache) ResidentBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Snapshot returns the cache's counters and resident bytes.
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, ResidentBytes: c.bytes}
}
