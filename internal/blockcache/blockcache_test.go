package blockcache

import (
	"math/rand"
	"testing"

	"fuseme/internal/matrix"
)

func key(node int, epoch uint64, bi, bj int) Key {
	return Key{Node: node, Epoch: epoch, BI: bi, BJ: bj}
}

func TestGenerationVisibility(t *testing.T) {
	c := New(1 << 20)
	k := key(1, 7, 0, 0)
	blk := matrix.NewDense(2, 2)
	if added, _ := c.Put(k, blk, 32, 5); !added {
		t.Fatal("Put rejected a fitting entry")
	}
	// Same generation (or earlier): the entry must be invisible.
	if _, hit := c.Get(k, 5); hit {
		t.Error("entry inserted at gen 5 visible to gen 5")
	}
	if _, hit := c.Get(k, 4); hit {
		t.Error("entry inserted at gen 5 visible to gen 4")
	}
	// Strictly later generation: hit.
	got, hit := c.Get(k, 6)
	if !hit {
		t.Fatal("entry inserted at gen 5 not visible to gen 6")
	}
	if got != blk {
		t.Error("hit returned a different block")
	}
	if s := c.Snapshot(); s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
}

func TestRePutKeepsOriginalGeneration(t *testing.T) {
	c := New(1 << 20)
	k := key(2, 9, 1, 1)
	c.Put(k, nil, 100, 3)
	// A later re-put must not double-charge or advance the visibility gen.
	if added, _ := c.Put(k, nil, 100, 8); added {
		t.Error("re-Put reported added")
	}
	if rb := c.ResidentBytes(); rb != 100 {
		t.Errorf("resident = %d after re-Put, want 100", rb)
	}
	if _, hit := c.Get(k, 4); !hit {
		t.Error("re-Put at gen 8 hid the original gen-3 entry from gen 4")
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(64)
	if added, _ := c.Put(key(0, 1, 0, 0), nil, 65, 1); added {
		t.Error("entry larger than the whole budget was cached")
	}
	if c.Len() != 0 || c.ResidentBytes() != 0 {
		t.Error("oversized Put left residue")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(300)
	a, b, d := key(0, 1, 0, 0), key(0, 1, 0, 1), key(0, 1, 0, 2)
	c.Put(a, nil, 100, 1)
	c.Put(b, nil, 100, 1)
	c.Put(d, nil, 100, 1)
	// Touch a so b becomes least recently used.
	c.Get(a, 2)
	_, evicted := c.Put(key(0, 1, 0, 3), nil, 100, 2)
	if len(evicted) != 1 || evicted[0] != b {
		t.Errorf("evicted %v, want [%v]", evicted, b)
	}
	if _, hit := c.Get(a, 3); !hit {
		t.Error("recently used entry was evicted")
	}
}

func TestInvalidateStale(t *testing.T) {
	c := New(1 << 20)
	c.Put(key(1, 10, 0, 0), nil, 10, 1)
	c.Put(key(1, 10, 0, 1), nil, 10, 1)
	c.Put(key(1, 22, 0, 0), nil, 10, 2) // current epoch
	c.Put(key(2, 10, 0, 0), nil, 10, 1) // different node, same stale epoch
	dropped := c.InvalidateStale(1, 22)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d entries, want 2", len(dropped))
	}
	for _, k := range dropped {
		if k.Node != 1 || k.Epoch != 10 {
			t.Errorf("dropped wrong key %v", k)
		}
	}
	if _, hit := c.Get(key(1, 22, 0, 0), 3); !hit {
		t.Error("current-epoch entry was invalidated")
	}
	if _, hit := c.Get(key(2, 10, 0, 0), 3); !hit {
		t.Error("other node's entry was invalidated")
	}
	if s := c.Snapshot(); s.Evictions != 0 {
		t.Errorf("invalidation counted as %d evictions", s.Evictions)
	}
	if rb := c.ResidentBytes(); rb != 20 {
		t.Errorf("resident = %d after invalidation, want 20", rb)
	}
	// Epoch 0 drops everything the node holds.
	if dropped := c.InvalidateStale(1, 0); len(dropped) != 1 {
		t.Errorf("epoch-0 invalidation dropped %d, want 1", len(dropped))
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, hit := c.Get(key(0, 1, 0, 0), 5); hit {
		t.Error("nil cache hit")
	}
	if added, evicted := c.Put(key(0, 1, 0, 0), nil, 8, 1); added || evicted != nil {
		t.Error("nil cache accepted a Put")
	}
	c.CountMiss()
	c.InvalidateStale(0, 0)
	if c.Len() != 0 || c.ResidentBytes() != 0 {
		t.Error("nil cache reported contents")
	}
	if s := c.Snapshot(); s != (Stats{}) {
		t.Error("nil cache reported stats")
	}
}

// TestBudgetInvariantRandomized is the LRU property test: under arbitrary
// randomized insert/get/invalidate sequences and budgets, resident bytes
// never exceed the budget, and the resident-byte counter always equals the
// sum of the live entries' sizes.
func TestBudgetInvariantRandomized(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		budget := int64(rng.Intn(1000) + 1)
		c := New(budget)
		live := map[Key]int64{}
		for op := 0; op < 400; op++ {
			k := key(rng.Intn(4), uint64(rng.Intn(6)+1), rng.Intn(3), rng.Intn(3))
			switch rng.Intn(4) {
			case 0, 1:
				size := int64(rng.Intn(300))
				added, evicted := c.Put(k, nil, size, uint64(op))
				for _, ek := range evicted {
					delete(live, ek)
				}
				if added {
					live[k] = size
				}
			case 2:
				c.Get(k, uint64(op))
			case 3:
				if rng.Intn(10) == 0 {
					node, epoch := rng.Intn(4), uint64(rng.Intn(6)+1)
					for _, dk := range c.InvalidateStale(node, epoch) {
						delete(live, dk)
					}
				}
			}
			var want int64
			for _, sz := range live {
				want += sz
			}
			got := c.ResidentBytes()
			if got != want {
				t.Fatalf("trial %d op %d: resident = %d, tracked sum = %d", trial, op, got, want)
			}
			if got > budget {
				t.Fatalf("trial %d op %d: resident %d exceeds budget %d", trial, op, got, budget)
			}
			if c.Len() != len(live) {
				t.Fatalf("trial %d op %d: len = %d, tracked = %d", trial, op, c.Len(), len(live))
			}
		}
	}
}
