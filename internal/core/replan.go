package core

import (
	"fuseme/internal/cluster"
	"fuseme/internal/cost"
	"fuseme/internal/dag"
	"fuseme/internal/exec"
	"fuseme/internal/fusion"
	"fuseme/internal/obs"
	"fuseme/internal/opt"
)

// DefaultReplanThreshold is the divergence ratio above which the replanner
// re-costs the plan: total measured stage time must be off by more than 25%
// of the total predicted time. Below it, the model is close enough that a
// re-pick would churn plans for noise.
const DefaultReplanThreshold = 0.25

// Replanner is the adaptive re-planning engine for iterative workloads: at
// each iteration boundary it compares the stages measured since the last
// check against the planner's predictions and, when they diverge beyond
// Threshold, re-costs the plan's cuboid operators with calibration-learned
// bandwidths and the current block-cache residency, re-picking their
// partitioning in place.
//
// Safety: results must be bit-identical with replanning on or off, so the
// swap is constrained to parameter changes that cannot reorder floating-point
// accumulation — R stays pinned (the k-axis split determines each output
// block's summation order) and aggregation-rooted plans are not touched at
// all (their per-task partial aggregates regroup under any re-partitioning).
// AllowInexact lifts both constraints for workloads that tolerate
// numerically-equivalent-but-not-bitwise results.
type Replanner struct {
	// Threshold is the divergence ratio that triggers a re-cost; zero means
	// DefaultReplanThreshold, negative re-costs at every check.
	Threshold float64
	// AllowInexact permits swaps that change accumulation order (full
	// (P,Q,R) re-pick including aggregation-rooted operators).
	AllowInexact bool
	// Obs supplies the prediction/measurement join the divergence check
	// reads and receives the fuseme_replan_* metrics. Required.
	Obs *obs.Obs
	// Learn, when non-nil, supplies learned bandwidths: its store is
	// consulted under its key before each re-cost.
	Learn *obs.Learner

	// Counters, readable after a run.
	Checks         int     // divergence checks performed
	Replans        int     // checks that swapped at least one operator
	LastDivergence float64 // divergence ratio at the last check

	lastMeasIdx int // measurements consumed by previous checks
}

// threshold resolves the effective trigger ratio.
func (r *Replanner) threshold() float64 {
	if r.Threshold == 0 {
		return DefaultReplanThreshold
	}
	return r.Threshold
}

// Divergence computes the prediction error over the stages measured since
// the last check: per operator, measured wall seconds are summed and
// compared against the Eq. 2 predicted seconds under the configured cluster
// constants; the ratio is Σ|measured − predicted| / Σ predicted. Zero when
// nothing was measured (or nothing had a prediction).
func (r *Replanner) Divergence(cc cluster.Config) float64 {
	if r.Obs == nil || r.Obs.Calib == nil {
		return 0
	}
	meas := r.Obs.Calib.Measurements()
	if r.lastMeasIdx > len(meas) {
		r.lastMeasIdx = len(meas) // calibration was reset under us
	}
	window := meas[r.lastMeasIdx:]
	r.lastMeasIdx = len(meas)
	if len(window) == 0 {
		return 0
	}
	wallByOp := map[string]float64{}
	for _, m := range window {
		wallByOp[m.Op] += m.WallSeconds
	}
	n := float64(cc.Nodes)
	if n <= 0 {
		n = 1
	}
	var errSec, predSec float64
	for op, wall := range wallByOp {
		pred, ok := r.Obs.Prediction(op)
		if !ok {
			continue
		}
		var netSec, comSec float64
		if cc.NetBandwidth > 0 {
			netSec = float64(pred.NetBytes) / (n * cc.NetBandwidth)
		}
		if bw := cc.EffectiveCompBandwidth(); bw > 0 {
			comSec = float64(pred.ComFlops) / (n * bw)
		}
		p := netSec
		if comSec > p {
			p = comSec
		}
		if p <= 0 {
			continue
		}
		predSec += p
		d := wall - p
		if d < 0 {
			d = -d
		}
		errSec += d
	}
	if predSec <= 0 {
		return 0
	}
	return errSec / predSec
}

// MaybeReplan runs one iteration-boundary check: it computes the divergence
// over the stages measured since the last check and, when it exceeds the
// threshold, re-costs pp's cuboid operators in place with learned bandwidths
// (from Learn's store, when attached) and the given cache residency
// (cachedNames marks query inputs whose blocks are resident worker-side, as
// cost.AnalyzeCached prices). Returns true when any operator's partitioning
// changed. pp must not be executing concurrently — call between iterations.
func (r *Replanner) MaybeReplan(pp *PhysPlan, cc cluster.Config, cachedNames map[string]bool) bool {
	r.Checks++
	r.Obs.Counter(obs.MReplanChecks).Inc()
	div := r.Divergence(cc)
	r.LastDivergence = div
	r.Obs.Gauge(obs.MReplanDivergence).Set(div)
	if div <= r.threshold() {
		return false
	}
	changed := r.Recost(pp, cc, cachedNames)
	if changed {
		r.Replans++
		r.Obs.Counter(obs.MReplans).Inc()
	}
	return changed
}

// Recost re-optimizes pp's eligible cuboid operators unconditionally (no
// divergence gate): the model takes learned bandwidths when the attached
// store has them, and estimates discount cache-resident inputs. Operator
// estimates are refreshed even when the parameters do not move, so the next
// iteration's predictions are judged against the current model. Returns true
// when any operator's (P,Q,R) changed.
func (r *Replanner) Recost(pp *PhysPlan, cc cluster.Config, cachedNames map[string]bool) bool {
	if r.Learn != nil {
		if l, ok := r.Learn.Store.Lookup(r.Learn.Key); ok {
			cc.LearnedNetBandwidth = l.NetBW
			cc.LearnedCompBandwidth = l.CompBW
		}
	}
	model := modelFor(cc)
	changed := false
	for _, op := range pp.Ops {
		if op.Strategy != exec.Cuboid || op.Plan.MainMM == nil || len(op.Group) > 0 {
			continue // only plain cuboid matmul operators have (P,Q,R) to re-pick
		}
		if op.Plan.Root.Op == dag.OpUnaryAgg && !r.AllowInexact {
			continue // partial aggregates regroup under any re-partition: pinned
		}
		e := cost.AnalyzeCached(op.Plan, cc.BlockSize, cachedIDsFor(op.Plan, cachedNames))
		var res opt.Result
		if r.AllowInexact {
			res = opt.Optimize(model, e)
		} else {
			res = opt.OptimizeFixedR(model, e, op.R)
		}
		if !res.Feasible {
			continue
		}
		if res.P != op.P || res.Q != op.Q || res.R != op.R {
			changed = true
		}
		op.P, op.Q, op.R = res.P, res.Q, res.R
		op.EstNetBytes, op.EstComFlops, op.EstMemPerTask = res.NetBytes, res.ComFlops, res.MemPerTask
	}
	return changed
}

// Clone returns a copy of the plan whose operator structs are independent of
// the original: the replanner can re-pick parameters on the copy while the
// original (for example a shared plan-cache entry) keeps its published
// parameters. The fusion plans themselves are immutable and stay shared.
func (pp *PhysPlan) Clone() *PhysPlan {
	ops := make([]*PhysOp, len(pp.Ops))
	for i, op := range pp.Ops {
		cp := *op
		ops[i] = &cp
	}
	return &PhysPlan{Graph: pp.Graph, Ops: ops}
}

// cachedIDsFor resolves cache-resident input names to a plan's external-input
// node IDs; nil when none of the plan's inputs are marked.
func cachedIDsFor(p *fusion.Plan, cachedNames map[string]bool) map[int]bool {
	if len(cachedNames) == 0 {
		return nil
	}
	var ids map[int]bool
	for _, in := range p.ExternalInputs() {
		if in.Op == dag.OpInput && cachedNames[in.Name] {
			if ids == nil {
				ids = map[int]bool{}
			}
			ids[in.ID] = true
		}
	}
	return ids
}
