package core_test

import (
	"errors"
	"strings"
	"testing"

	"fuseme/internal/block"
	"fuseme/internal/cluster"
	"fuseme/internal/core"
	"fuseme/internal/dag"
	"fuseme/internal/matrix"
	"fuseme/internal/ref"
	"fuseme/internal/workloads"
)

func testCluster(bs int) *cluster.Cluster {
	return cluster.MustNew(cluster.Config{
		Nodes:         2,
		TasksPerNode:  3,
		TaskMemBytes:  1 << 40,
		NetBandwidth:  1e9,
		CompBandwidth: 1e12,
		BlockSize:     bs,
	})
}

// testCase is one workload instance with concrete inputs.
type testCase struct {
	name  string
	graph *dag.Graph
	flats map[string]matrix.Mat
}

func smallWorkloads(t *testing.T) []testCase {
	t.Helper()
	return []testCase{
		{
			name:  "nmf-kernel",
			graph: workloads.NMFKernel(37, 31, 9, 0.06),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomSparse(37, 31, 0.06, 0.5, 1.5, 1),
				"U": matrix.RandomDense(37, 9, 0.5, 1.5, 2),
				"V": matrix.RandomDense(31, 9, 0.5, 1.5, 3),
			},
		},
		{
			name:  "gnmf",
			graph: workloads.GNMF(29, 23, 5, 0.3),
			flats: map[string]matrix.Mat{
				"X": matrix.ToDense(matrix.RandomSparse(29, 23, 0.3, 0.5, 1.5, 4)),
				"U": matrix.RandomDense(5, 23, 0.5, 1.5, 5),
				"V": matrix.RandomDense(29, 5, 0.5, 1.5, 6),
			},
		},
		{
			name:  "als-loss",
			graph: workloads.ALSLoss(26, 22, 6, 0.08),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomSparse(26, 22, 0.08, 0.5, 1.5, 7),
				"U": matrix.RandomDense(26, 6, -0.5, 0.5, 8),
				"V": matrix.RandomDense(6, 22, -0.5, 0.5, 9),
			},
		},
		{
			name:  "pca",
			graph: workloads.PCA(24, 18, 4),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomDense(24, 18, -1, 1, 10),
				"S": matrix.RandomDense(18, 4, -1, 1, 11),
			},
		},
		{
			name:  "outer",
			graph: workloads.Outer(25, 27, 7, 0.05),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomSparse(25, 27, 0.05, 0.5, 1.5, 12),
				"U": matrix.RandomDense(25, 7, -1, 1, 13),
				"V": matrix.RandomDense(7, 27, -1, 1, 14),
			},
		},
		{
			name:  "multiagg",
			graph: workloads.MultiAgg(21, 19, 0.2),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomSparse(21, 19, 0.2, -1, 1, 15),
				"U": matrix.RandomDense(21, 19, -1, 1, 16),
				"V": matrix.RandomDense(21, 19, -1, 1, 17),
			},
		},
		{
			name: "autoencoder",
			graph: workloads.AutoEncoderStep(workloads.AutoEncoderConfig{
				Features: 13, Batch: 8, H1: 6, H2: 3}),
			flats: map[string]matrix.Mat{
				"XT": matrix.RandomDense(13, 8, 0, 1, 18),
				"W1": matrix.RandomDense(6, 13, -0.3, 0.3, 19),
				"b1": matrix.RandomDense(6, 1, -0.1, 0.1, 20),
				"W2": matrix.RandomDense(3, 6, -0.3, 0.3, 21),
				"b2": matrix.RandomDense(3, 1, -0.1, 0.1, 22),
				"W3": matrix.RandomDense(6, 3, -0.3, 0.3, 23),
				"b3": matrix.RandomDense(6, 1, -0.1, 0.1, 24),
				"W4": matrix.RandomDense(13, 6, -0.3, 0.3, 25),
				"b4": matrix.RandomDense(13, 1, -0.1, 0.1, 26),
			},
		},
	}
}

func blockInputs(flats map[string]matrix.Mat, bs int) map[string]*block.Matrix {
	out := make(map[string]*block.Matrix, len(flats))
	for name, m := range flats {
		out[name] = block.FromMat(m, bs)
	}
	return out
}

// TestAllEnginesMatchReference is the central equivalence suite: every
// engine must produce numerically identical results to the single-node
// reference on every workload.
func TestAllEnginesMatchReference(t *testing.T) {
	engines := []core.Engine{core.FuseME{}, core.SystemDSSim{}, core.DistMESim{}, core.MatFastSim{}, core.TensorFlowSim{}}
	for _, tc := range smallWorkloads(t) {
		want, err := ref.Evaluate(tc.graph, tc.flats)
		if err != nil {
			t.Fatalf("%s: ref: %v", tc.name, err)
		}
		for _, bs := range []int{5, 8} {
			inputs := blockInputs(tc.flats, bs)
			for _, e := range engines {
				cl := testCluster(bs)
				got, _, err := core.Run(e, tc.graph, cl, inputs)
				if err != nil {
					t.Errorf("%s/%s/bs=%d: %v", tc.name, e.Name(), bs, err)
					continue
				}
				for name, w := range want {
					g, ok := got[name]
					if !ok {
						t.Errorf("%s/%s: missing output %q", tc.name, e.Name(), name)
						continue
					}
					if !matrix.EqualApprox(g.ToMat(), w, 1e-8) {
						t.Errorf("%s/%s/bs=%d: output %q differs from reference", tc.name, e.Name(), bs, name)
					}
				}
			}
		}
	}
}

// TestFuseMEFewerStagesThanDistME: fusion must reduce the number of
// distributed stages (intermediate materialisations) on GNMF.
func TestFuseMEFewerStagesThanDistME(t *testing.T) {
	tc := smallWorkloads(t)[1] // gnmf
	inputs := blockInputs(tc.flats, 5)

	clF := testCluster(5)
	if _, _, err := core.Run(core.FuseME{}, tc.graph, clF, inputs); err != nil {
		t.Fatal(err)
	}
	clD := testCluster(5)
	if _, _, err := core.Run(core.DistMESim{}, tc.graph, clD, inputs); err != nil {
		t.Fatal(err)
	}
	if clF.Stats().Stages >= clD.Stats().Stages {
		t.Fatalf("FuseME stages %d >= DistME stages %d", clF.Stats().Stages, clD.Stats().Stages)
	}
}

func TestPhysPlanDescribe(t *testing.T) {
	tc := smallWorkloads(t)[0]
	cl := testCluster(5)
	pp, err := (core.FuseME{}).Compile(tc.graph, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	desc := pp.Describe()
	for _, want := range []string{"CFO", "P=", "type=Outer"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestAdmissionControlOOM(t *testing.T) {
	// A tiny task budget makes the BFO-style engines fail with O.O.M.,
	// while FuseME's CFO partitions its way under the budget.
	g := workloads.NMFKernel(60, 60, 20, 0.05)
	flats := map[string]matrix.Mat{
		"X": matrix.RandomSparse(60, 60, 0.05, 0.5, 1.5, 1),
		"U": matrix.RandomDense(60, 20, 0.5, 1.5, 2),
		"V": matrix.RandomDense(60, 20, 0.5, 1.5, 3),
	}
	cfg := cluster.Config{
		Nodes: 2, TasksPerNode: 3, TaskMemBytes: 12_000,
		NetBandwidth: 1e9, CompBandwidth: 1e12, BlockSize: 5,
	}
	inputs := blockInputs(flats, 5)

	clM := cluster.MustNew(cfg)
	_, _, err := core.Run(core.MatFastSim{}, g, clM, inputs)
	if !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("MatFast under tiny budget: %v, want O.O.M.", err)
	}

	clF := cluster.MustNew(cfg)
	if _, _, err := core.Run(core.FuseME{}, g, clF, inputs); err != nil {
		t.Fatalf("FuseME should fit via partitioning: %v", err)
	}
}

func TestExecuteInputValidation(t *testing.T) {
	tc := smallWorkloads(t)[0]
	cl := testCluster(5)
	pp, err := (core.FuseME{}).Compile(tc.graph, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Execute(pp, cl, map[string]*block.Matrix{}); err == nil {
		t.Fatal("missing inputs accepted")
	}
	bad := blockInputs(tc.flats, 5)
	bad["X"] = block.New(3, 3, 5)
	if _, err := core.Execute(pp, cl, bad); err == nil {
		t.Fatal("wrong-shape input accepted")
	}
}

func TestSimulateMatchesAdmission(t *testing.T) {
	// Simulation at paper scale: FuseME succeeds; the broadcast engines
	// blow the 10 GB budget and report O.O.M. without computing anything.
	g := workloads.NMFKernel(750_000, 750_000, 2_000, 0.001)
	cl := cluster.MustNew(cluster.Default())
	ppF, err := (core.FuseME{}).Compile(g, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := core.Simulate(ppF, cl)
	if err != nil {
		t.Fatalf("FuseME simulation: %v", err)
	}
	if stats.SimSeconds <= 0 || stats.ConsolidationBytes <= 0 {
		t.Fatalf("degenerate stats: %+v", stats)
	}

	ppB, err := (core.SystemDSSim{}).Compile(g, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Simulate(ppB, cl)
	if !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("SystemDS at 750K scale: %v, want O.O.M.", err)
	}
}

func TestSimulateTimeout(t *testing.T) {
	g := workloads.NMFKernel(500_000, 500_000, 2_000, 0.001)
	cfg := cluster.Default()
	cfg.SimTimeLimit = 0.001
	cl := cluster.MustNew(cfg)
	pp, err := (core.FuseME{}).Compile(g, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Simulate(pp, cl); !errors.Is(err, cluster.ErrTimeout) {
		t.Fatalf("got %v, want T.O.", err)
	}
}

func TestSimulatedCFOBeatsBaselinesAtScale(t *testing.T) {
	// The headline result at n=100K (Figure 12(a)/(e)): CFO's simulated
	// time and communication are well below BFO's.
	g := workloads.NMFKernel(100_000, 100_000, 2_000, 0.001)
	cl := cluster.MustNew(cluster.Default())

	ppF, err := (core.FuseME{}).Compile(g, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	sF, err := core.Simulate(ppF, cl)
	if err != nil {
		t.Fatal(err)
	}
	ppS, err := (core.SystemDSSim{}).Compile(g, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	sS, err := core.Simulate(ppS, cl)
	if err != nil {
		t.Fatal(err)
	}
	if sF.TotalCommBytes() >= sS.TotalCommBytes() {
		t.Fatalf("CFO comm %d >= SystemDS comm %d", sF.TotalCommBytes(), sS.TotalCommBytes())
	}
	if sF.SimSeconds >= sS.SimSeconds {
		t.Fatalf("CFO time %v >= SystemDS time %v", sF.SimSeconds, sS.SimSeconds)
	}
}

// TestMultiAggFusion: the two sums of Figure 2(d) must execute as ONE fused
// operator on FuseME and SystemDS, scanning the shared X once.
func TestMultiAggFusion(t *testing.T) {
	g := workloads.MultiAgg(40, 40, 0.2)
	flats := map[string]matrix.Mat{
		"X": matrix.RandomSparse(40, 40, 0.2, -1, 1, 1),
		"U": matrix.RandomDense(40, 40, -1, 1, 2),
		"V": matrix.RandomDense(40, 40, -1, 1, 3),
	}
	inputs := blockInputs(flats, 8)
	want, err := ref.Evaluate(g, flats)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []core.Engine{core.FuseME{}, core.SystemDSSim{}} {
		cl := testCluster(8)
		pp, err := e.Compile(g, cl.Config())
		if err != nil {
			t.Fatal(err)
		}
		if len(pp.Ops) != 1 || len(pp.Ops[0].Group) != 2 {
			t.Fatalf("%s: plan not multi-agg fused:\n%s", e.Name(), pp.Describe())
		}
		if !strings.Contains(pp.Describe(), "MultiAgg") {
			t.Fatalf("%s: Describe lacks MultiAgg", e.Name())
		}
		got, err := core.Execute(pp, cl, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if !matrix.EqualApprox(got[name].ToMat(), w, 1e-9) {
				t.Fatalf("%s: output %q differs", e.Name(), name)
			}
		}
		// One stage, and the shared X moved at most once per task: total
		// consolidation stays below the two-scan cost.
		if cl.Stats().Stages != 1 {
			t.Fatalf("%s: %d stages, want 1", e.Name(), cl.Stats().Stages)
		}
	}
	// DistME runs the aggregations separately: more stages.
	clD := testCluster(8)
	ppD, err := (core.DistMESim{}).Compile(g, clD.Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(ppD.Ops) < 2 {
		t.Fatal("DistME should not multi-agg fuse")
	}
}

// TestMultiAggNotGroupedWhenUnrelated: aggregations with disjoint inputs
// stay separate.
func TestMultiAggNotGroupedWhenUnrelated(t *testing.T) {
	g := dag.NewGraph()
	a := g.Input("A", 30, 30, 1)
	b := g.Input("B", 30, 30, 1)
	g.SetOutput("sa", g.Agg(matrix.SumAll, g.Unary("sq", a)))
	g.SetOutput("sb", g.Agg(matrix.SumAll, g.Unary("sq", b)))
	cl := testCluster(8)
	pp, err := (core.FuseME{}).Compile(g, cl.Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range pp.Ops {
		if len(op.Group) > 0 {
			t.Fatal("disjoint aggregations were grouped")
		}
	}
}
