package core

import (
	"fmt"

	"fuseme/internal/baselines"
	"fuseme/internal/cfg"
	"fuseme/internal/cluster"
	"fuseme/internal/cost"
	"fuseme/internal/dag"
	"fuseme/internal/exec"
	"fuseme/internal/fusion"
	"fuseme/internal/opt"
)

// modelFor derives the cost-model constants from the cluster configuration.
// CompBW uses the kernel-thread-scaled compute bandwidth so plan costs (and
// the chosen (P,Q,R)) reflect intra-task parallelism when it is configured
// explicitly. Calibration-store overrides (LearnedNetBandwidth /
// LearnedCompBandwidth) replace the configured constants when set; the
// learned compute rate is already effective per-node, so the kernel-thread
// multiplier does not reapply to it.
func modelFor(cc cluster.Config) cost.Model {
	c := cc
	netBW := c.NetBandwidth
	if c.LearnedNetBandwidth > 0 {
		netBW = c.LearnedNetBandwidth
	}
	compBW := c.EffectiveCompBandwidth()
	if c.LearnedCompBandwidth > 0 {
		compBW = c.LearnedCompBandwidth
	}
	return cost.Model{
		Nodes:        c.Nodes,
		NetBW:        netBW,
		CompBW:       compBW,
		TaskMemBytes: c.TaskMemBytes,
		MinTasks:     c.PlanSlots(),
	}
}

// gridOp builds the physical operator for a plan without matrix
// multiplication (or any plan executed as a partitioned map).
func gridOp(p *fusion.Plan, cc cluster.Config, kind string) *PhysOp {
	net, com, mem := cost.ElementwiseEstimates(p, cc.PlanSlots())
	return &PhysOp{Plan: p, Strategy: exec.Cuboid, Kind: kind,
		EstNetBytes: net, EstComFlops: com, EstMemPerTask: mem}
}

// FuseME is the paper's engine: CFG plan generation + CFO fused operators.
// The zero value is the system as published; the flags enable the paper's
// future-work load-balancing extension and the sparsity-exploitation
// ablation.
type FuseME struct {
	// Balanced partitions the i/j axes by the sparse driver's non-zero
	// distribution instead of equal widths.
	Balanced bool
	// NoMask disables outer-fusion masking (dense evaluation), for ablation.
	NoMask bool
	// CachedNames marks query inputs (by name) whose blocks are resident in
	// the worker block caches: their consolidation traffic is discounted
	// from NetEst when choosing (P,Q,R), reflecting the steady state of an
	// iterative workload from the second iteration on. Empty (the zero
	// value) compiles exactly as published.
	CachedNames map[string]bool
}

// Name implements Engine.
func (f FuseME) Name() string {
	switch {
	case f.Balanced:
		return "FuseME-balanced"
	case f.NoMask:
		return "FuseME-nomask"
	}
	return "FuseME"
}

// Compile implements Engine.
func (f FuseME) Compile(g *dag.Graph, cc cluster.Config) (*PhysPlan, error) {
	model := modelFor(cc)
	res, err := cfg.Generate(g, model, cc.BlockSize)
	if err != nil {
		return nil, err
	}
	pp := &PhysPlan{Graph: g}
	for _, p := range res.Set.Plans {
		if p.MainMM == nil {
			pp.Ops = append(pp.Ops, gridOp(p, cc, "Map"))
			continue
		}
		params, ok := res.Params[p]
		// Cache-resident inputs change the network term, so re-optimize
		// (P,Q,R) with the discounted estimates even when CFG already
		// picked parameters for this plan.
		if cached := f.cachedIDs(p); !ok || len(cached) > 0 {
			params = opt.Optimize(model, cost.AnalyzeCached(p, cc.BlockSize, cached))
		}
		pp.Ops = append(pp.Ops, &PhysOp{
			Plan: p, Strategy: exec.Cuboid, Kind: "CFO",
			P: params.P, Q: params.Q, R: params.R,
			Balance: f.Balanced, NoMask: f.NoMask,
			EstNetBytes: params.NetBytes, EstComFlops: params.ComFlops,
			EstMemPerTask: params.MemPerTask,
		})
	}
	pp.Ops = groupMultiAgg(pp.Ops, cc)
	return pp, nil
}

// cachedIDs resolves CachedNames to the plan's external-input node IDs;
// nil when no marked input feeds this plan.
func (f FuseME) cachedIDs(p *fusion.Plan) map[int]bool {
	if len(f.CachedNames) == 0 {
		return nil
	}
	var ids map[int]bool
	for _, in := range p.ExternalInputs() {
		if in.Op == dag.OpInput && f.CachedNames[in.Name] {
			if ids == nil {
				ids = map[int]bool{}
			}
			ids[in.ID] = true
		}
	}
	return ids
}

// SystemDSSim reproduces SystemDS: GEN fusion plans executed with BFO or
// RFO, selected by the paper's rule — BFO when the main matrix has fewer
// partitions than the output grid is wide or tall, RFO otherwise.
type SystemDSSim struct{}

// Name implements Engine.
func (SystemDSSim) Name() string { return "SystemDS" }

// Compile implements Engine.
func (SystemDSSim) Compile(g *dag.Graph, cc cluster.Config) (*PhysPlan, error) {
	rule := fusion.RuleFor(g, cc.TaskMemBytes)
	set := baselines.GENGenerate(g, rule)
	if err := set.Validate(g); err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	pp := &PhysPlan{Graph: g}
	slots := cc.TotalSlots()
	for _, p := range set.Plans {
		if p.MainMM == nil {
			pp.Ops = append(pp.Ops, gridOp(p, cc, "Map"))
			continue
		}
		gi, gj, _ := p.BlockGridDims(cc.BlockSize)
		if useBFO(p, gi, gj) {
			net, com, mem := cost.BFOEstimates(p, slots)
			pp.Ops = append(pp.Ops, &PhysOp{Plan: p, Strategy: exec.Broadcast, Kind: "BFO",
				EstNetBytes: net, EstComFlops: com, EstMemPerTask: mem})
		} else {
			net, com, mem := cost.RFOEstimates(p, cc.BlockSize)
			pp.Ops = append(pp.Ops, &PhysOp{Plan: p, Strategy: exec.Cuboid, Kind: "RFO",
				P: gi, Q: gj, R: 1,
				EstNetBytes: net, EstComFlops: com, EstMemPerTask: mem})
		}
	}
	pp.Ops = groupMultiAgg(pp.Ops, cc)
	return pp, nil
}

// broadcastLimitBytes approximates Spark's practical broadcast ceiling:
// side matrices comfortably below it are always broadcast (mapmm), as
// SystemDS prefers.
const broadcastLimitBytes = 2 << 30

// smallGridBlocks is the output-grid size below which broadcasting cannot
// pay off: with so few output blocks a CPMM-style shuffle (the RFO at a
// trivial grid moves each input once) always beats T-fold side broadcast,
// so SystemDS keeps the shuffle-based operator there.
const smallGridBlocks = 16

// useBFO implements the SystemDS selection rule (Section 6.2): broadcast
// when the main matrix repartitions into fewer partitions than the output
// grid's width or height — unless the output grid is trivially small, where
// the shuffle-based operator wins; RFO otherwise.
func useBFO(p *fusion.Plan, gi, gj int) bool {
	main := cost.MainInput(p)
	if main == nil {
		return true
	}
	if gi*gj <= smallGridBlocks {
		return false
	}
	parts := int(cost.SparkSizeBytes(main)/cost.PartitionBytes) + 1
	return parts < gi || parts < gj
}

// DistMESim reproduces DistME: no operator fusion; every multiplication runs
// as a standalone CuboidMM with its own optimal (P,Q,R), every other
// operator as a partitioned map, and every intermediate materialises.
type DistMESim struct{}

// Name implements Engine.
func (DistMESim) Name() string { return "DistME" }

// Compile implements Engine.
func (DistMESim) Compile(g *dag.Graph, cc cluster.Config) (*PhysPlan, error) {
	set := baselines.DistMEGenerate(g)
	if err := set.Validate(g); err != nil {
		return nil, fmt.Errorf("distme: %w", err)
	}
	model := modelFor(cc)
	pp := &PhysPlan{Graph: g}
	for _, p := range set.Plans {
		if p.MainMM == nil {
			pp.Ops = append(pp.Ops, gridOp(p, cc, "Map"))
			continue
		}
		params := opt.Optimize(model, cost.Analyze(p, cc.BlockSize))
		pp.Ops = append(pp.Ops, &PhysOp{Plan: p, Strategy: exec.Cuboid, Kind: "CuboidMM",
			P: params.P, Q: params.Q, R: params.R,
			EstNetBytes: params.NetBytes, EstComFlops: params.ComFlops,
			EstMemPerTask: params.MemPerTask})
	}
	return pp, nil
}

// MatFastSim reproduces MatFast: folded element-wise operators; every
// multiplication runs broadcast-style (and fails admission when the side
// matrices exceed the task budget — MatFast has no partitioning knob).
type MatFastSim struct{}

// Name implements Engine.
func (MatFastSim) Name() string { return "MatFast" }

// Compile implements Engine.
func (MatFastSim) Compile(g *dag.Graph, cc cluster.Config) (*PhysPlan, error) {
	return compileElementwiseFusedBroadcast(g, cc, "MatFast")
}

// TensorFlowSim approximates TensorFlow XLA for the AutoEncoder comparison:
// element-wise fusion (XLA's fused kernels) with broadcast data-parallel
// execution. Experiments run it on a cluster variant with a higher local
// compute bandwidth, reflecting XLA's code generation.
type TensorFlowSim struct{}

// Name implements Engine.
func (TensorFlowSim) Name() string { return "TensorFlow" }

// Compile implements Engine.
func (TensorFlowSim) Compile(g *dag.Graph, cc cluster.Config) (*PhysPlan, error) {
	return compileElementwiseFusedBroadcast(g, cc, "XLA")
}

func compileElementwiseFusedBroadcast(g *dag.Graph, cc cluster.Config, mmKind string) (*PhysPlan, error) {
	rule := fusion.RuleFor(g, cc.TaskMemBytes)
	set := baselines.MatFastGenerate(g, rule)
	if err := set.Validate(g); err != nil {
		return nil, fmt.Errorf("%s: %w", mmKind, err)
	}
	pp := &PhysPlan{Graph: g}
	slots := cc.TotalSlots()
	for _, p := range set.Plans {
		if p.MainMM == nil {
			pp.Ops = append(pp.Ops, gridOp(p, cc, "Fold"))
			continue
		}
		net, com, mem := cost.BFOEstimates(p, slots)
		pp.Ops = append(pp.Ops, &PhysOp{Plan: p, Strategy: exec.Broadcast, Kind: mmKind,
			EstNetBytes: net, EstComFlops: com, EstMemPerTask: mem})
	}
	return pp, nil
}

// groupMultiAgg rewrites runs of aggregation operators into Multi-aggregation
// fused operators (Figure 2(d)): plans that are aggregation-rooted, free of
// matrix multiplication, aggregate over the same plane, share at least one
// input matrix and depend only on query inputs execute as one distributed
// operator with multiple outputs, scanning the shared inputs once. Both
// FuseME (CFG) and SystemDS (GEN) support this fusion type.
func groupMultiAgg(ops []*PhysOp, cc cluster.Config) []*PhysOp {
	type bucketKey struct{ rows, cols int }
	buckets := map[bucketKey][]*PhysOp{}
	for _, op := range ops {
		p := op.Plan
		if len(op.Group) > 0 || op.Strategy != exec.Cuboid || p.MainMM != nil ||
			p.Root.Op != dag.OpUnaryAgg {
			continue
		}
		onlyInputs := true
		for _, in := range p.ExternalInputs() {
			if in.Op != dag.OpInput && in.Op != dag.OpScalar {
				onlyInputs = false
				break
			}
		}
		if !onlyInputs {
			continue
		}
		child := p.Root.Inputs[0]
		buckets[bucketKey{child.Rows, child.Cols}] = append(buckets[bucketKey{child.Rows, child.Cols}], op)
	}

	grouped := map[*PhysOp]bool{}
	replacement := map[*PhysOp]*PhysOp{}
	for _, cand := range buckets {
		if len(cand) < 2 {
			continue
		}
		// Greedy grouping: an op joins the group when it shares a non-scalar
		// input with any member.
		used := make([]bool, len(cand))
		for i := range cand {
			if used[i] {
				continue
			}
			group := []*PhysOp{cand[i]}
			inputs := inputIDSet(cand[i].Plan)
			used[i] = true
			for changed := true; changed; {
				changed = false
				for j := range cand {
					if used[j] || !sharesInput(inputs, cand[j].Plan) {
						continue
					}
					group = append(group, cand[j])
					for id := range inputIDSet(cand[j].Plan) {
						inputs[id] = true
					}
					used[j] = true
					changed = true
				}
			}
			if len(group) < 2 {
				continue
			}
			plans := make([]*fusion.Plan, len(group))
			var comFlops int64
			for k, g := range group {
				plans[k] = g.Plan
				comFlops += g.EstComFlops
			}
			net, mem := multiAggEstimates(plans, cc)
			merged := &PhysOp{Plan: plans[0], Group: plans, Strategy: exec.Cuboid,
				Kind: "MultiAgg", EstNetBytes: net, EstComFlops: comFlops, EstMemPerTask: mem}
			replacement[group[0]] = merged
			for _, g := range group {
				grouped[g] = true
			}
		}
	}
	if len(grouped) == 0 {
		return ops
	}
	out := make([]*PhysOp, 0, len(ops))
	for _, op := range ops {
		if m, ok := replacement[op]; ok {
			out = append(out, m)
			continue
		}
		if grouped[op] {
			continue
		}
		out = append(out, op)
	}
	return out
}

func inputIDSet(p *fusion.Plan) map[int]bool {
	s := map[int]bool{}
	for _, in := range p.ExternalInputs() {
		if in.Op != dag.OpScalar {
			s[in.ID] = true
		}
	}
	return s
}

func sharesInput(inputs map[int]bool, p *fusion.Plan) bool {
	for _, in := range p.ExternalInputs() {
		if in.Op != dag.OpScalar && inputs[in.ID] {
			return true
		}
	}
	return false
}

// multiAggEstimates charges the union of the group's inputs once:
// plane-shaped inputs are co-partitioned (free), others transfer once; the
// per-task working set is one partition's share of the distinct inputs.
func multiAggEstimates(plans []*fusion.Plan, cc cluster.Config) (netBytes, memPerTask int64) {
	child := plans[0].Root.Inputs[0]
	seen := map[int]bool{}
	var inBytes int64
	for _, p := range plans {
		for _, in := range p.ExternalInputs() {
			if in.Op == dag.OpScalar || seen[in.ID] {
				continue
			}
			seen[in.ID] = true
			inBytes += in.EstSizeBytes()
			if in.Rows != child.Rows || in.Cols != child.Cols {
				netBytes += in.EstSizeBytes()
			}
		}
	}
	tasks := int64(cc.TotalSlots())
	for _, p := range plans {
		netBytes += p.Root.EstSizeBytes() * tasks // partial-aggregate shuffle
	}
	parts := tasks
	if byParts := (inBytes + cost.PartitionBytes - 1) / cost.PartitionBytes; byParts > parts {
		parts = byParts
	}
	memPerTask = inBytes/parts + 1
	return netBytes, memPerTask
}

// Engines returns the full comparison roster in the paper's order.
func Engines() []Engine {
	return []Engine{MatFastSim{}, SystemDSSim{}, DistMESim{}, FuseME{}}
}
