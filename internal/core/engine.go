// Package core is the engine layer of FuseME: it turns a logical query DAG
// into a physical plan (an ordered list of fused operators with their
// strategies and partitioning parameters), runs it on the simulated cluster,
// and implements the five engines the paper evaluates — FuseME (CFG + CFO)
// and the simulated comparators SystemDS (GEN + BFO/RFO), DistME (CuboidMM,
// no fusion), MatFast (folded operators) and TensorFlow-XLA.
package core

import (
	"fmt"
	"strings"

	"fuseme/internal/block"
	"fuseme/internal/cluster"
	"fuseme/internal/dag"
	"fuseme/internal/exec"
	"fuseme/internal/fusion"
	"fuseme/internal/obs"
	"fuseme/internal/rt"
)

// PhysOp is one physical fused operator of a compiled plan.
type PhysOp struct {
	Plan     *fusion.Plan
	Strategy exec.Strategy
	P, Q, R  int
	Kind     string // display label: CFO, RFO, BFO, CuboidMM, Map, ...
	Balance  bool   // sparsity-aware load balancing
	NoMask   bool   // disable sparsity exploitation (ablation)

	// Group, when non-empty, makes this a Multi-aggregation fused operator
	// (Figure 2(d)): Plan is Group[0], and all grouped aggregation plans
	// execute as one distributed operator sharing their input scan.
	Group []*fusion.Plan

	// Compile-time estimates, used for admission control and plan display.
	EstNetBytes   int64
	EstComFlops   int64
	EstMemPerTask int64
}

// OpKey is the operator's observability key: it names the operator in
// calibration reports, joining compile-time predictions to the stage
// measurements the executor records under the same key.
func (op *PhysOp) OpKey() string {
	return fmt.Sprintf("%s %s#%d", op.Kind, op.Plan.Root.Label(), op.Plan.Root.ID)
}

// PhysPlan is a compiled query: fused operators in execution (topological)
// order.
type PhysPlan struct {
	Graph *dag.Graph
	Ops   []*PhysOp
}

// Describe renders the physical plan for humans: one line per fused
// operator with its member operators, strategy and parameters.
func (pp *PhysPlan) Describe() string {
	var b strings.Builder
	for i, op := range pp.Ops {
		labels := make([]string, 0, op.Plan.Size())
		for _, id := range op.Plan.MemberIDs() {
			labels = append(labels, fmt.Sprintf("%s#%d", op.Plan.Members[id].Label(), id))
		}
		fmt.Fprintf(&b, "[%d] %-8s {%s}", i, op.Kind, strings.Join(labels, " "))
		if op.Strategy == exec.Cuboid && op.Plan.MainMM != nil {
			fmt.Fprintf(&b, " (P=%d,Q=%d,R=%d)", op.P, op.Q, op.R)
		}
		fmt.Fprintf(&b, " type=%s estNet=%s estMem=%s\n",
			op.Plan.Classify(), cluster.FormatBytes(op.EstNetBytes), cluster.FormatBytes(op.EstMemPerTask))
	}
	return b.String()
}

// DescribeCosts renders the plan's per-operator cost predictions: each fused
// operator's chosen (P,Q,R) with its predicted network, computation and
// per-task memory terms and the Eq. 2 time decomposition under cfg's cluster
// constants — calibration-learned bandwidths when set (marked "learned",
// matching what the compile actually priced with), the configured constants
// otherwise. This is what `fuseme -explain` prints before execution.
func (pp *PhysPlan) DescribeCosts(cfg cluster.Config) string {
	n := float64(cfg.Nodes)
	netBW, netSrc := cfg.NetBandwidth, ""
	if cfg.LearnedNetBandwidth > 0 {
		netBW, netSrc = cfg.LearnedNetBandwidth, " learned"
	}
	compBW, compSrc := cfg.EffectiveCompBandwidth(), ""
	if cfg.LearnedCompBandwidth > 0 {
		compBW, compSrc = cfg.LearnedCompBandwidth, " learned"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "predicted costs (N=%d, B̂n=%.3g B/s%s, B̂c=%.3g flop/s%s, θt=%s):\n",
		cfg.Nodes, netBW, netSrc, compBW, compSrc, cluster.FormatBytes(cfg.TaskMemBytes))
	for i, op := range pp.Ops {
		pqr := "-"
		if op.Strategy == exec.Cuboid && op.Plan.MainMM != nil {
			pqr = fmt.Sprintf("(%d,%d,%d)", op.P, op.Q, op.R)
		}
		netSec := float64(op.EstNetBytes) / (n * netBW)
		comSec := float64(op.EstComFlops) / (n * compBW)
		bound, total := "net", netSec
		if comSec > netSec {
			bound, total = "comp", comSec
		}
		fmt.Fprintf(&b, "[%d] %-8s %-18s %-11s net=%-10s comp=%-12s mem/task=%-10s time=%.3gs (net %.3gs, comp %.3gs, %s-bound)\n",
			i, op.Kind, fmt.Sprintf("%s#%d", op.Plan.Root.Label(), op.Plan.Root.ID), pqr,
			cluster.FormatBytes(op.EstNetBytes),
			fmt.Sprintf("%.3g flop", float64(op.EstComFlops)),
			cluster.FormatBytes(op.EstMemPerTask),
			total, netSec, comSec, bound)
	}
	return b.String()
}

// Engine compiles logical plans for a particular system.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Compile lowers the query DAG to a physical plan for a cluster of the
	// given shape.
	Compile(g *dag.Graph, cfg cluster.Config) (*PhysPlan, error)
}

// Execute runs a compiled plan on a runtime (the in-process simulated
// cluster or a remote coordinator): fused operators execute in order, each
// materialising its root's value, which later operators consume as external
// inputs. Admission control rejects operators whose estimated per-task
// memory exceeds the budget (the O.O.M. of the paper's figures).
func Execute(pp *PhysPlan, rtm rt.Runtime, inputs map[string]*block.Matrix) (map[string]*block.Matrix, error) {
	return ExecuteObs(pp, rtm, inputs, nil)
}

// ExecuteObs is Execute with observability: when o is enabled it opens a
// plan span, records each operator's compile-time cost prediction for
// calibration, and threads o into every fused operator so stages and tasks
// are instrumented. A nil o is exactly Execute.
func ExecuteObs(pp *PhysPlan, rtm rt.Runtime, inputs map[string]*block.Matrix, o *obs.Obs) (map[string]*block.Matrix, error) {
	planSpan := o.StartSpan("plan", "plan", 0)
	if planSpan != nil {
		planSpan.Arg("operators", len(pp.Ops))
		defer planSpan.End()
	}
	values := map[int]*block.Matrix{}
	for _, in := range pp.Graph.InputNodes() {
		m, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("core: missing input %q", in.Name)
		}
		if m.Rows != in.Rows || m.Cols != in.Cols {
			return nil, fmt.Errorf("core: input %q is %dx%d, query declares %dx%d",
				in.Name, m.Rows, m.Cols, in.Rows, in.Cols)
		}
		values[in.ID] = m
	}
	for _, op := range pp.Ops {
		desc := fmt.Sprintf("%s %s", op.Kind, op.Plan)
		if err := rtm.CheckAdmission(op.EstMemPerTask, desc); err != nil {
			return nil, err
		}
		if o.Enabled() {
			o.Predict(obs.StagePred{
				Op: op.OpKey(), Kind: op.Kind, P: op.P, Q: op.Q, R: op.R,
				NetBytes: op.EstNetBytes, ComFlops: op.EstComFlops, MemBytes: op.EstMemPerTask,
			})
		}
		bind := exec.Bindings{}
		plans := op.Group
		if len(plans) == 0 {
			plans = []*fusion.Plan{op.Plan}
		}
		for _, p := range plans {
			for _, in := range p.ExternalInputs() {
				if in.Op == dag.OpScalar {
					continue
				}
				v, ok := values[in.ID]
				if !ok {
					return nil, fmt.Errorf("core: operator %s needs unmaterialised value of node %d (%s)",
						op.Kind, in.ID, in.Label())
				}
				bind[in.ID] = v
			}
		}
		if len(op.Group) > 0 {
			multi := &exec.MultiAggOp{Plans: op.Group, Obs: o, OpKey: op.OpKey()}
			outs, err := multi.Execute(rtm, bind)
			if err != nil {
				return nil, fmt.Errorf("core: %s failed: %w", desc, err)
			}
			for i, p := range op.Group {
				values[p.Root.ID] = outs[i]
			}
			continue
		}
		fused := &exec.FusedOp{Plan: op.Plan, P: op.P, Q: op.Q, R: op.R,
			Strategy: op.Strategy, Balance: op.Balance, NoMask: op.NoMask,
			Obs: o, OpKey: op.OpKey()}
		out, err := fused.Execute(rtm, bind)
		if err != nil {
			return nil, fmt.Errorf("core: %s failed: %w", desc, err)
		}
		values[op.Plan.Root.ID] = out
	}
	outputs := make(map[string]*block.Matrix, len(pp.Graph.Outputs()))
	for name, n := range pp.Graph.Outputs() {
		v, ok := values[n.ID]
		if !ok {
			return nil, fmt.Errorf("core: output %q (node %d) was never materialised", name, n.ID)
		}
		outputs[name] = v
	}
	return outputs, nil
}

// Run compiles and executes a query with the given engine, returning the
// outputs and the runtime stats accumulated during execution.
func Run(e Engine, g *dag.Graph, rtm rt.Runtime, inputs map[string]*block.Matrix) (map[string]*block.Matrix, cluster.Stats, error) {
	return RunObs(e, g, rtm, inputs, nil)
}

// RunObs is Run with an observability bundle threaded through execution:
// spans, metrics and calibration records are collected for each stage the
// plan runs. A nil bundle behaves exactly like Run.
func RunObs(e Engine, g *dag.Graph, rtm rt.Runtime, inputs map[string]*block.Matrix, o *obs.Obs) (map[string]*block.Matrix, cluster.Stats, error) {
	pp, err := e.Compile(g, rtm.Config())
	if err != nil {
		return nil, rtm.Stats(), fmt.Errorf("%s: compile: %w", e.Name(), err)
	}
	out, err := ExecuteObs(pp, rtm, inputs, o)
	if err != nil {
		return nil, rtm.Stats(), fmt.Errorf("%s: %w", e.Name(), err)
	}
	return out, rtm.Stats(), nil
}
