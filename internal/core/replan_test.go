package core_test

import (
	"testing"

	"fuseme/internal/cluster"
	"fuseme/internal/core"
	"fuseme/internal/obs"
	"fuseme/internal/workloads"
)

// replanCluster mirrors the replan bench's shape: a parallelism floor of 12
// over grids big enough that eligible operators have real (P,Q) freedom at
// fixed R.
func replanCluster() cluster.Config {
	return cluster.Config{
		Nodes: 2, TasksPerNode: 1, Oversubscribe: 6,
		TaskMemBytes: 4 << 30,
		NetBandwidth: 1e9, CompBandwidth: 50e9, BlockSize: 64,
	}
}

// netBoundLearner returns a learner whose store has learned a net bandwidth
// far below the configured constant, as loopback calibration produces.
func netBoundLearner(cc cluster.Config, netBW float64) *obs.Learner {
	store := obs.NewCalibStore()
	key := obs.CalibKey{Workers: cc.Nodes, BlockSize: cc.BlockSize, KernelThreads: cc.KernelThreads}
	model := obs.ClusterModel{Nodes: cc.Nodes, NetBandwidth: cc.NetBandwidth, CompBandwidth: cc.EffectiveCompBandwidth()}
	pred := obs.StagePred{Op: "seed", NetBytes: 1 << 30, ComFlops: 1}
	meas := obs.StageMeas{Op: "seed", ConsolidationBytes: int64(netBW * float64(cc.Nodes)), WallSeconds: 1}
	store.Observe(key, model, pred, meas)
	return &obs.Learner{Store: store, Key: key, Model: model}
}

type opParams struct{ p, q, r int }

func snapshotParams(pp *core.PhysPlan) []opParams {
	out := make([]opParams, len(pp.Ops))
	for i, op := range pp.Ops {
		out[i] = opParams{op.P, op.Q, op.R}
	}
	return out
}

func TestReplannerDivergenceWindow(t *testing.T) {
	o := &obs.Obs{Calib: obs.NewCalibration()}
	r := &core.Replanner{Obs: o}
	cc := replanCluster()

	// Predicted: 2e9 bytes over 2 nodes at 1e9 B/s = 1s (net-bound).
	o.Predict(obs.StagePred{Op: "CFO mul#1", NetBytes: 2e9, ComFlops: 1})
	o.Measure(obs.StageMeas{Op: "CFO mul#1", WallSeconds: 3})
	if div := r.Divergence(cc); div < 1.99 || div > 2.01 {
		t.Errorf("Divergence = %g, want 2.0 (|3s - 1s| / 1s)", div)
	}
	// The window is consumed: a second check with no new measurements sees
	// no divergence.
	if div := r.Divergence(cc); div != 0 {
		t.Errorf("second Divergence = %g, want 0 (window consumed)", div)
	}
	// New measurements open a new window.
	o.Measure(obs.StageMeas{Op: "CFO mul#1", WallSeconds: 1.5})
	if div := r.Divergence(cc); div < 0.49 || div > 0.51 {
		t.Errorf("third Divergence = %g, want 0.5", div)
	}
}

func TestMaybeReplanBelowThresholdKeepsPlan(t *testing.T) {
	cc := replanCluster()
	pp, err := core.FuseME{}.Compile(workloads.GNMF(512, 384, 128, 1), cc)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotParams(pp)

	o := &obs.Obs{Calib: obs.NewCalibration()}
	// Even with a learner that would move the plan, an accurate model (no
	// measurements at all here) must not trigger a swap.
	r := &core.Replanner{Obs: o, Learn: netBoundLearner(cc, 8e6)}
	if r.MaybeReplan(pp, cc, map[string]bool{"X": true}) {
		t.Error("MaybeReplan swapped with zero divergence")
	}
	if got := snapshotParams(pp); !paramsEqual(got, before) {
		t.Errorf("plan changed below threshold: %v -> %v", before, got)
	}
	if r.Checks != 1 {
		t.Errorf("Checks = %d, want 1", r.Checks)
	}
}

func TestRecostMovesPQAndPinsR(t *testing.T) {
	cc := replanCluster()
	pp, err := core.FuseME{}.Compile(workloads.GNMF(512, 384, 128, 1), cc)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotParams(pp)

	// Learned: the wire is ~50x slower than configured, and X is
	// cache-resident — the conditions under which replication should move
	// off the cached operand.
	r := &core.Replanner{Obs: &obs.Obs{}, Learn: netBoundLearner(cc, 20e6)}
	if !r.Recost(pp, cc, map[string]bool{"X": true}) {
		t.Fatal("Recost changed nothing; the bit-safe search found no better (P,Q)")
	}
	after := snapshotParams(pp)
	moved := false
	for i := range before {
		if after[i].r != before[i].r {
			t.Errorf("op %d: R moved %d -> %d; R must stay pinned", i, before[i].r, after[i].r)
		}
		if after[i] != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Error("no operator moved")
	}

	// Negative threshold re-costs at every check regardless of divergence.
	pp2, err := core.FuseME{}.Compile(workloads.GNMF(512, 384, 128, 1), cc)
	if err != nil {
		t.Fatal(err)
	}
	always := &core.Replanner{Threshold: -1, Obs: &obs.Obs{Calib: obs.NewCalibration()},
		Learn: netBoundLearner(cc, 20e6)}
	if !always.MaybeReplan(pp2, cc, map[string]bool{"X": true}) {
		t.Error("Threshold -1 did not force a re-cost")
	}
	if always.Replans != 1 {
		t.Errorf("Replans = %d, want 1", always.Replans)
	}
}

func TestRecostPinsAggregationRootedOps(t *testing.T) {
	cc := replanCluster()
	// ALSLoss's fused operator is rooted at sum(...): a re-partition would
	// regroup its per-task partial aggregates, so the bit-safe replanner must
	// not touch it no matter how wrong the model was.
	pp, err := core.FuseME{}.Compile(workloads.ALSLoss(512, 384, 128, 1), cc)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotParams(pp)
	r := &core.Replanner{Obs: &obs.Obs{}, Learn: netBoundLearner(cc, 1e6)}
	r.Recost(pp, cc, map[string]bool{"X": true})
	if got := snapshotParams(pp); !paramsEqual(got, before) {
		t.Errorf("aggregation-rooted plan moved: %v -> %v", before, got)
	}
}

func TestPhysPlanCloneIsolatesParams(t *testing.T) {
	cc := replanCluster()
	pp, err := core.FuseME{}.Compile(workloads.GNMF(512, 384, 128, 1), cc)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotParams(pp)
	cl := pp.Clone()

	r := &core.Replanner{Obs: &obs.Obs{}, Learn: netBoundLearner(cc, 20e6)}
	if !r.Recost(cl, cc, map[string]bool{"X": true}) {
		t.Fatal("Recost changed nothing on the clone")
	}
	if got := snapshotParams(pp); !paramsEqual(got, before) {
		t.Errorf("re-costing the clone mutated the original: %v -> %v", before, got)
	}
	if paramsEqual(snapshotParams(cl), before) {
		t.Error("clone did not move")
	}
}

func paramsEqual(a, b []opParams) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
