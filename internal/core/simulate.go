package core

import (
	"fmt"

	"fuseme/internal/cluster"
	"fuseme/internal/dag"
	"fuseme/internal/exec"
	"fuseme/internal/fusion"
)

// Simulate dry-runs a compiled plan at full scale: no blocks are computed;
// instead, the compile-time estimates drive the same admission control,
// communication accounting and simulated clock (Eq. 2) that real execution
// uses. This is how the experiment harness reproduces the paper's figures at
// their original dimensions (hundreds of thousands to millions of block
// rows), which no single machine could materialise.
//
// Operators whose inputs are independent run concurrently (Spark submits
// independent jobs in parallel), so scheduling overhead and stage time are
// charged per dependency level: the simulated time of a level is the maximum
// over its operators, and levels execute in sequence. This is where fusion's
// stage-count reduction becomes visible.
//
// Admission failures return a wrapped cluster.ErrOutOfMemory; exceeding the
// configured simulated-time limit returns a wrapped cluster.ErrTimeout.
// Partial stats accumulated before the failure are returned either way.
func Simulate(pp *PhysPlan, cl *cluster.Cluster) (cluster.Stats, error) {
	cfg := cl.Config()
	var s cluster.Stats
	n := float64(cfg.Nodes)

	levels := opLevels(pp)
	// Per level: bandwidth and compute are shared cluster resources, so
	// bytes and flops add up across concurrent operators; only scheduling
	// overhead overlaps (the longest operator's waves gate the level).
	levelNet := map[int]float64{}
	levelCom := map[int]float64{}
	levelOvh := map[int]float64{}
	for _, op := range pp.Ops {
		desc := fmt.Sprintf("%s %s", op.Kind, op.Plan)
		if op.EstMemPerTask > cfg.TaskMemBytes {
			return s, fmt.Errorf("%s needs %s per task, budget %s: %w",
				desc, cluster.FormatBytes(op.EstMemPerTask), cluster.FormatBytes(cfg.TaskMemBytes), cluster.ErrOutOfMemory)
		}
		tasks := estTasks(op, cfg)
		agg := estAggregationBytes(op, tasks)
		lvl := levels[op]
		levelNet[lvl] += float64(op.EstNetBytes + agg)
		levelCom[lvl] += float64(op.EstComFlops)
		if cfg.TaskOverhead > 0 {
			waves := (tasks + cfg.TotalSlots() - 1) / cfg.TotalSlots()
			if ovh := float64(waves) * cfg.TaskOverhead; ovh > levelOvh[lvl] {
				levelOvh[lvl] = ovh
			}
		}
		s.ConsolidationBytes += op.EstNetBytes
		s.AggregationBytes += agg
		s.Flops += op.EstComFlops
		s.Stages++
		s.Tasks += tasks
		if op.EstMemPerTask > s.PeakTaskMemBytes {
			s.PeakTaskMemBytes = op.EstMemPerTask
		}
	}
	for lvl, net := range levelNet {
		s.SimSeconds += maxf(net/(n*cfg.NetBandwidth), levelCom[lvl]/(n*cfg.EffectiveCompBandwidth())) + levelOvh[lvl]
	}
	for lvl, ovh := range levelOvh {
		if _, seen := levelNet[lvl]; !seen {
			s.SimSeconds += ovh
		}
	}
	if cfg.SimTimeLimit > 0 && s.SimSeconds > cfg.SimTimeLimit {
		return s, fmt.Errorf("plan: simulated time %.0fs exceeds limit %.0fs: %w",
			s.SimSeconds, cfg.SimTimeLimit, cluster.ErrTimeout)
	}
	return s, nil
}

// opLevels assigns each operator its depth in the plan's dependency DAG:
// an operator's level is one past the deepest operator producing one of its
// external inputs. Operators on the same level are independent.
func opLevels(pp *PhysPlan) map[*PhysOp]int {
	producer := map[int]*PhysOp{}
	for _, op := range pp.Ops {
		producer[op.Plan.Root.ID] = op
	}
	levels := map[*PhysOp]int{}
	var levelOf func(op *PhysOp) int
	levelOf = func(op *PhysOp) int {
		if l, ok := levels[op]; ok {
			return l
		}
		levels[op] = 0 // break accidental cycles defensively
		l := 0
		for _, in := range op.Plan.ExternalInputs() {
			if p, ok := producer[in.ID]; ok && p != op {
				if d := levelOf(p) + 1; d > l {
					l = d
				}
			}
		}
		levels[op] = l
		return l
	}
	for _, op := range pp.Ops {
		levelOf(op)
	}
	return levels
}

// estAggregationBytes estimates the matrix-aggregation shuffle of an
// operator: R partial blocks per output block of the main multiplication
// when R > 1, plus the (small) partial aggregates of a root aggregation.
func estAggregationBytes(op *PhysOp, tasks int) int64 {
	var agg int64
	if op.Plan.MainMM != nil && op.Strategy == exec.Cuboid && op.R > 1 {
		out := op.Plan.MainMM.EstSizeBytes()
		if m := fusion.FindOuterMask(op.Plan); m != nil {
			out = m.Driver.EstNNZ() * 16 // masked partials carry the driver pattern
		}
		agg += int64(op.R) * out
	}
	if op.Plan.Root.Op == dag.OpUnaryAgg {
		agg += op.Plan.Root.EstSizeBytes() * int64(tasks)
	}
	return agg
}

// estTasks estimates the task count an operator launches.
func estTasks(op *PhysOp, cfg cluster.Config) int {
	if op.Plan.MainMM != nil && op.Strategy == exec.Cuboid {
		t := op.P * op.Q * op.R
		if t < 1 {
			t = 1
		}
		return t
	}
	slots := cfg.TotalSlots()
	if slots < 1 {
		slots = 1
	}
	return slots
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
