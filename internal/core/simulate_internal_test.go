package core

import (
	"testing"

	"fuseme/internal/cluster"
	"fuseme/internal/dag"
	"fuseme/internal/exec"
	"fuseme/internal/fusion"
	"fuseme/internal/matrix"
)

// chainPlan builds a physical plan of single-operator fragments for
// sq(A) -> log(.) -> exp(.) plus an independent abs(B).
func chainPlan(t *testing.T) *PhysPlan {
	t.Helper()
	g := dag.NewGraph()
	a := g.Input("A", 100, 100, 1)
	b := g.Input("B", 100, 100, 1)
	n1 := g.Unary("sq", a)
	n2 := g.Unary("log", n1)
	n3 := g.Unary("exp", n2)
	n4 := g.Unary("abs", b)
	g.SetOutput("O", n3)
	g.SetOutput("P", n4)
	pp := &PhysPlan{Graph: g}
	for _, n := range []*dag.Node{n1, n2, n3, n4} {
		p, err := fusion.NewPlan(n, map[int]*dag.Node{n.ID: n})
		if err != nil {
			t.Fatal(err)
		}
		pp.Ops = append(pp.Ops, &PhysOp{Plan: p, Strategy: exec.Cuboid, Kind: "Map",
			EstNetBytes: 1000, EstComFlops: 1000, EstMemPerTask: 1000})
	}
	return pp
}

func TestOpLevels(t *testing.T) {
	pp := chainPlan(t)
	levels := opLevels(pp)
	want := []int{0, 1, 2, 0} // chain depths; abs(B) independent at level 0
	for i, op := range pp.Ops {
		if levels[op] != want[i] {
			t.Errorf("op %d: level %d, want %d", i, levels[op], want[i])
		}
	}
}

func TestSimulateLevelParallelism(t *testing.T) {
	cfg := cluster.Default()
	cfg.TaskOverhead = 1.0
	cfg.SimTimeLimit = 0
	cl := cluster.MustNew(cfg)
	pp := chainPlan(t)
	s, err := Simulate(pp, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Four operators but only three dependency levels: the independent
	// abs(B) overlaps with level 0, so overhead is charged three times.
	if s.Stages != 4 {
		t.Fatalf("stages = %d", s.Stages)
	}
	if s.SimSeconds < 3 || s.SimSeconds >= 4 {
		t.Fatalf("sim time %v, want about 3 (three levels of 1s overhead)", s.SimSeconds)
	}
}

func TestEstAggregationBytes(t *testing.T) {
	g := dag.NewGraph()
	u := g.Input("U", 5000, 1000, 1)
	v := g.Input("V", 1000, 5000, 1)
	mm := g.MatMul(u, v)
	g.SetOutput("O", mm)
	p, err := fusion.NewPlan(mm, map[int]*dag.Node{mm.ID: mm})
	if err != nil {
		t.Fatal(err)
	}
	op := &PhysOp{Plan: p, Strategy: exec.Cuboid, P: 2, Q: 2, R: 3}
	got := estAggregationBytes(op, 12)
	if want := 3 * mm.EstSizeBytes(); got != want {
		t.Fatalf("agg = %d, want %d", got, want)
	}
	op.R = 1
	if got := estAggregationBytes(op, 4); got != 0 {
		t.Fatalf("R=1 agg = %d, want 0", got)
	}
	// Broadcast strategy shuffles no partials.
	op.R = 3
	op.Strategy = exec.Broadcast
	if got := estAggregationBytes(op, 4); got != 0 {
		t.Fatalf("broadcast agg = %d, want 0", got)
	}
}

func TestEstTasks(t *testing.T) {
	g := dag.NewGraph()
	u := g.Input("U", 5000, 1000, 1)
	v := g.Input("V", 1000, 5000, 1)
	mm := g.MatMul(u, v)
	g.SetOutput("O", mm)
	p, _ := fusion.NewPlan(mm, map[int]*dag.Node{mm.ID: mm})
	cfg := cluster.Default()
	if got := estTasks(&PhysOp{Plan: p, Strategy: exec.Cuboid, P: 3, Q: 4, R: 2}, cfg); got != 24 {
		t.Fatalf("cuboid tasks = %d", got)
	}
	if got := estTasks(&PhysOp{Plan: p, Strategy: exec.Broadcast}, cfg); got != cfg.TotalSlots() {
		t.Fatalf("broadcast tasks = %d", got)
	}
}

func TestModelForMirrorsCluster(t *testing.T) {
	cfg := cluster.Default()
	cl := cluster.MustNew(cfg)
	m := modelFor(cl.Config())
	if m.Nodes != cfg.Nodes || m.TaskMemBytes != cfg.TaskMemBytes || m.MinTasks != cfg.TotalSlots() {
		t.Fatalf("modelFor mismatch: %+v", m)
	}
}

func TestUseBFORules(t *testing.T) {
	g := dag.NewGraph()
	// Large sparse main, small sides, big grid: BFO (the Figure 12(a) case).
	x := g.Input("X", 100_000, 100_000, 0.001)
	u := g.Input("U", 100_000, 2_000, 1)
	mul := g.Binary(matrix.Mul, x, g.MatMul(u, g.Transpose(g.Input("V", 100_000, 2_000, 1))))
	g.SetOutput("O", mul)
	members := map[int]*dag.Node{}
	for _, n := range g.Nodes() {
		if !n.IsLeaf() {
			members[n.ID] = n
		}
	}
	p, err := fusion.NewPlan(mul, members)
	if err != nil {
		t.Fatal(err)
	}
	gi, gj, _ := p.BlockGridDims(1000)
	if !useBFO(p, gi, gj) {
		t.Fatal("sparse main with large grid should broadcast")
	}
	// Trivially small grid: shuffle-based (CPMM) regardless.
	g2 := dag.NewGraph()
	a := g2.Input("A", 200, 500_000, 1)
	b := g2.Input("B", 500_000, 200, 1)
	mm2 := g2.MatMul(a, b)
	g2.SetOutput("O", mm2)
	p2, err := fusion.NewPlan(mm2, map[int]*dag.Node{mm2.ID: mm2})
	if err != nil {
		t.Fatal(err)
	}
	if useBFO(p2, 1, 1) {
		t.Fatal("k x k output should use the shuffle-based operator")
	}
}
