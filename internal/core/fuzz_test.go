package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"fuseme/internal/block"
	"fuseme/internal/cluster"
	"fuseme/internal/core"
	"fuseme/internal/dag"
	"fuseme/internal/matrix"
	"fuseme/internal/ref"
)

// The differential fuzzer: build random well-typed query DAGs, run them
// through every engine and compare against the single-node reference. This
// exercises plan generation, space trees, cuboid execution, masking and
// aggregation across shapes no hand-written test would cover.

// fuzzDims is the dimension vocabulary; small enough that random matmul
// pairings are frequent.
var fuzzDims = []int{3, 5, 8, 12, 17}

// safe element-wise functions: defined and finite for all inputs in [-2, 2].
var fuzzUnary = []string{"sq", "abs", "sigmoid", "tanh", "relu", "neg", "sin", "cos"}

var fuzzBinary = []matrix.BinOp{matrix.Add, matrix.Sub, matrix.Mul, matrix.MinOp, matrix.MaxOp}

// buildFuzzGraph constructs a random DAG with the given seed, returning the
// graph and concrete inputs.
func buildFuzzGraph(seed int64) (*dag.Graph, map[string]matrix.Mat) {
	rng := rand.New(rand.NewSource(seed))
	g := dag.NewGraph()
	flats := map[string]matrix.Mat{}

	newInput := func(rows, cols int) *dag.Node {
		name := fmt.Sprintf("I%d", len(flats))
		var m matrix.Mat
		if rng.Intn(3) == 0 {
			m = matrix.RandomSparse(rows, cols, 0.05+rng.Float64()*0.3, -1, 1, rng.Int63())
		} else {
			m = matrix.RandomDense(rows, cols, -1, 1, rng.Int63())
		}
		n := g.Input(name, rows, cols, matrix.Density(m))
		flats[name] = m
		return n
	}

	pool := []*dag.Node{}
	for i := 0; i < 2+rng.Intn(3); i++ {
		rows := fuzzDims[rng.Intn(len(fuzzDims))]
		cols := fuzzDims[rng.Intn(len(fuzzDims))]
		pool = append(pool, newInput(rows, cols))
	}

	pick := func() *dag.Node { return pool[rng.Intn(len(pool))] }

	steps := 3 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			pool = append(pool, g.Unary(fuzzUnary[rng.Intn(len(fuzzUnary))], pick()))
		case 2, 3, 4:
			a := pick()
			// Find or make a shape-compatible operand.
			b := pick()
			if b.Rows != a.Rows || b.Cols != a.Cols {
				if rng.Intn(2) == 0 {
					b = newInput(a.Rows, a.Cols)
				} else {
					b = g.Scalar(float64(rng.Intn(5)) - 2)
				}
			}
			op := fuzzBinary[rng.Intn(len(fuzzBinary))]
			pool = append(pool, g.Binary(op, a, b))
		case 5, 6, 7:
			a := pick()
			// Find a matmul-compatible right operand; make one if needed.
			var b *dag.Node
			for _, cand := range pool {
				if cand.Rows == a.Cols && cand != a {
					b = cand
					break
				}
			}
			if b == nil {
				b = newInput(a.Cols, fuzzDims[rng.Intn(len(fuzzDims))])
			}
			pool = append(pool, g.MatMul(a, b))
		case 8:
			pool = append(pool, g.Transpose(pick()))
		case 9:
			aggs := []matrix.AggFunc{matrix.SumAll, matrix.RowSum, matrix.ColSum}
			pool = append(pool, g.Agg(aggs[rng.Intn(len(aggs))], pick()))
		}
	}

	// Outputs: every root (otherwise parts of the pool dangle unused, which
	// is fine — reachability pruning handles them).
	outs := 0
	for _, n := range pool {
		if n.NumConsumers() == 0 && !n.IsLeaf() {
			g.SetOutput(fmt.Sprintf("out%d", outs), n)
			outs++
		}
	}
	if outs == 0 {
		root := g.Unary("sq", pick())
		g.SetOutput("out0", root)
	}
	return g, flats
}

func TestFuzzEnginesAgainstReference(t *testing.T) {
	engines := []core.Engine{core.FuseME{}, core.SystemDSSim{}, core.DistMESim{}, core.MatFastSim{}}
	const rounds = 120
	for seed := int64(0); seed < rounds; seed++ {
		g, flats := buildFuzzGraph(seed)
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: invalid graph: %v", seed, err)
		}
		want, err := ref.Evaluate(g, flats)
		if err != nil {
			t.Fatalf("seed %d: ref: %v", seed, err)
		}
		for _, bs := range []int{4, 7} {
			inputs := map[string]*block.Matrix{}
			for name, m := range flats {
				inputs[name] = block.FromMat(m, bs)
			}
			for _, e := range engines {
				cl := testCluster(bs)
				got, _, err := core.Run(e, g, cl, inputs)
				if err != nil {
					t.Fatalf("seed %d/%s/bs=%d: %v\nDAG:\n%s", seed, e.Name(), bs, err, g.DOT(nil))
				}
				for name, w := range want {
					if !matrix.EqualApprox(got[name].ToMat(), w, 1e-8) {
						t.Fatalf("seed %d/%s/bs=%d: output %q diverges\nDAG:\n%s",
							seed, e.Name(), bs, name, g.DOT(nil))
					}
				}
			}
		}
	}
}

// TestFuzzCFOPartitionings runs random graphs on clusters of different
// shapes: the parallelism floor changes the optimizer's (P,Q,R) and the
// number of tasks, and results must be partitioning-invariant.
func TestFuzzCFOPartitionings(t *testing.T) {
	shapes := []cluster.Config{
		{Nodes: 1, TasksPerNode: 1, TaskMemBytes: 1 << 40, NetBandwidth: 1e9, CompBandwidth: 1e12, BlockSize: 5},
		{Nodes: 2, TasksPerNode: 3, TaskMemBytes: 1 << 40, NetBandwidth: 1e9, CompBandwidth: 1e12, BlockSize: 5},
		{Nodes: 4, TasksPerNode: 8, TaskMemBytes: 1 << 40, NetBandwidth: 1e9, CompBandwidth: 1e12, BlockSize: 5},
	}
	for seed := int64(200); seed < 240; seed++ {
		g, flats := buildFuzzGraph(seed)
		want, err := ref.Evaluate(g, flats)
		if err != nil {
			t.Fatalf("seed %d: ref: %v", seed, err)
		}
		inputs := map[string]*block.Matrix{}
		for name, m := range flats {
			inputs[name] = block.FromMat(m, 5)
		}
		for _, cfg := range shapes {
			cl := cluster.MustNew(cfg)
			got, _, err := core.Run(core.FuseME{}, g, cl, inputs)
			if err != nil {
				t.Fatalf("seed %d (%d slots): %v", seed, cfg.TotalSlots(), err)
			}
			for name, w := range want {
				if !matrix.EqualApprox(got[name].ToMat(), w, 1e-8) {
					t.Fatalf("seed %d (%d slots): output %q diverges", seed, cfg.TotalSlots(), name)
				}
			}
		}
	}
}
