// Package serve turns the fuseme library into a multi-tenant query service:
// one warm cluster (sim or TCP) accepts many concurrent plan submissions over
// HTTP/JSON. Three mechanisms make concurrent tenants safe and fair:
//
//   - Admission control: the cluster memory budget (Nodes x TasksPerNode x
//     θt by default) is carved into per-tenant reservations; a submission
//     that would overcommit its tenant's carve-out queues (bounded, with a
//     deadline) or is rejected with 429 + Retry-After instead of OOMing the
//     cluster.
//   - Fair scheduling: every session in the pool shares one task-dispatch
//     scheduler (internal/sched), so stage tasks of concurrent plans
//     interleave by weighted round-robin across tenants — one giant GNMF job
//     cannot starve small queries.
//   - Plan cache: sessions share one compiled-plan cache
//     (internal/plancache), so repeat queries — even with renamed variables —
//     skip CFG exploration entirely.
//
// Per-tenant metrics (fuseme_tenant_*) and the plan-cache counters ride the
// shared obs registry, served on /metrics and /debug/stats next to the query
// API. Command fuseme-serve wraps this package as a daemon.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fuseme"
	"fuseme/internal/obs"
)

// Tenant declares one tenant of the service.
type Tenant struct {
	// Name identifies the tenant in metrics and scheduling.
	Name string
	// Token authenticates the tenant's requests (Authorization: Bearer or
	// X-FuseMe-Token). Empty means the tenant needs no token.
	Token string
	// Weight is the tenant's weighted-round-robin scheduling share and, when
	// QuotaBytes is zero, its proportional share of the memory budget.
	// Values below one are treated as one.
	Weight int
	// QuotaBytes fixes the tenant's memory reservation; zero derives it from
	// the budget in proportion to Weight.
	QuotaBytes int64
}

// Config configures a Server.
type Config struct {
	// Cluster is the warm cluster every tenant session runs on.
	Cluster fuseme.ClusterConfig
	// Engine selects the planning engine (default EngineFuseME).
	Engine fuseme.Engine
	// Tenants lists the accepted tenants. Empty runs the service open: one
	// implicit "default" tenant owning the whole budget, no token required.
	Tenants []Tenant
	// Sessions bounds the session pool — the number of plans that can
	// execute concurrently (default 8).
	Sessions int
	// BudgetBytes is the cluster memory budget carved into tenant
	// reservations (default Nodes x TasksPerNode x TaskMemBytes).
	BudgetBytes int64
	// QueueDepth bounds each tenant's admission queue (default 16).
	QueueDepth int
	// QueueWait bounds how long a queued submission waits for memory before
	// 429 (default 10s).
	QueueWait time.Duration
	// DefaultMemBytes is the per-query memory-demand floor used when a
	// request carries no explicit mem_bytes (default 16 MiB). The estimate
	// is max(floor, 2 x total input bytes).
	DefaultMemBytes int64
	// PlanCacheEntries sizes the shared plan cache; 0 uses the default
	// (256), negative disables plan caching.
	PlanCacheEntries int
	// Registry, when non-nil, is the metrics registry to aggregate into
	// (default: a fresh one).
	Registry *obs.Registry
	// CalibPath, when non-empty, opens (or creates) a calibration store at
	// this path, shares it across every pooled session — all tenants run on
	// the same cluster, so they learn into and benefit from one set of
	// effective bandwidths — and saves it on Shutdown. Plan-cache entries
	// are stamped with the store's generation, so a material learned-value
	// movement re-costs cached plans.
	CalibPath string
	// Calibration, when non-nil, is an already-open shared store (takes
	// precedence over CalibPath; the caller owns persistence).
	Calibration *fuseme.CalibrationStore
	// SessionOptions are applied to every pooled session (e.g.
	// fuseme.WithBlockCache).
	SessionOptions []fuseme.Option
	// Journal, when non-nil, is the shared query event journal (the caller
	// owns its lifetime). Nil creates one sized JournalRing (default 4096).
	Journal *obs.Journal
	// JournalRing sizes the in-memory event ring of a server-created journal.
	JournalRing int
	// JournalPath, when non-empty, makes the server-created journal also sink
	// events to a JSONL file at this path (flushed on Shutdown). Ignored when
	// Journal is set.
	JournalPath string
}

// Server is the multi-tenant query service.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	pc      *fuseme.PlanCache
	sched   *fuseme.Scheduler
	adm     *admission
	tenants []Tenant // normalized
	byToken map[string]*Tenant
	open    *Tenant // the implicit tenant when none are configured

	// calib is the shared per-cluster calibration store, nil unless
	// configured; calibOwned marks a CalibPath-opened store the server
	// saves on Shutdown.
	calib      *fuseme.CalibrationStore
	calibOwned bool

	mux *http.ServeMux

	sessMu   sync.Mutex
	sessions []*fuseme.Session // every session ever created, for Close
	free     chan *fuseme.Session
	created  int

	// drainMu guards the drain flag and the in-flight count so admission
	// and shutdown are atomic: a submission either sees the flag or is
	// counted and waited for.
	drainMu  sync.Mutex
	draining bool
	inflight int
	idle     chan struct{} // closed when draining and inflight hits zero

	active atomic.Int64 // queries currently executing (gauge mirror)

	dsMu     sync.Mutex
	datasets map[string]*fuseme.Matrix

	tmu          sync.Mutex
	tenantCounts map[string]*tenantCounters

	// Per-query observability: the shared event journal every lifecycle
	// event lands in, and the registry backing GET /v1/queries.
	journal      *obs.Journal
	journalOwned bool // server created it (and flushes any file sink)
	queries      *queryRegistry
}

// tenantCounters mirrors the per-tenant metric families for /v1/status.
type tenantCounters struct {
	queries, errors, rejects, planHits, tasks, bytes int64
}

// New builds a Server. It does not listen; mount Handler on an http.Server
// (cmd/fuseme-serve) or call it directly in tests.
func New(cfg Config) (*Server, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 10 * time.Second
	}
	if cfg.DefaultMemBytes <= 0 {
		cfg.DefaultMemBytes = 16 << 20
	}
	if cfg.BudgetBytes <= 0 {
		cfg.BudgetBytes = int64(cfg.Cluster.Nodes) * int64(cfg.Cluster.TasksPerNode) * cfg.Cluster.TaskMemBytes
	}
	if cfg.BudgetBytes <= 0 {
		return nil, errors.New("serve: cluster memory budget is zero (set Config.BudgetBytes or the cluster dimensions)")
	}
	s := &Server{
		cfg:          cfg,
		reg:          cfg.Registry,
		byToken:      map[string]*Tenant{},
		datasets:     map[string]*fuseme.Matrix{},
		tenantCounts: map[string]*tenantCounters{},
		free:         make(chan *fuseme.Session, cfg.Sessions),
		queries:      newQueryRegistry(),
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	switch {
	case cfg.Journal != nil:
		s.journal = cfg.Journal
	case cfg.JournalPath != "":
		j, err := obs.OpenJournal(cfg.JournalPath, cfg.JournalRing)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.journal, s.journalOwned = j, true
	default:
		s.journal = obs.NewJournal(cfg.JournalRing)
		s.journalOwned = true
	}
	if cfg.PlanCacheEntries >= 0 {
		s.pc = fuseme.NewPlanCache(cfg.PlanCacheEntries)
	}
	s.sched = fuseme.NewScheduler(cfg.Cluster.Nodes * cfg.Cluster.TasksPerNode)
	switch {
	case cfg.Calibration != nil:
		s.calib = cfg.Calibration
	case cfg.CalibPath != "":
		cs, err := fuseme.OpenCalibrationStore(cfg.CalibPath)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.calib = cs
		s.calibOwned = true
	}

	// Normalize tenants and carve the budget.
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: "default", Weight: 1}}
	}
	totalWeight := 0
	seen := map[string]bool{}
	for i := range tenants {
		if tenants[i].Name == "" {
			return nil, fmt.Errorf("serve: tenant %d has no name", i)
		}
		if seen[tenants[i].Name] {
			return nil, fmt.Errorf("serve: duplicate tenant %q", tenants[i].Name)
		}
		seen[tenants[i].Name] = true
		if tenants[i].Weight < 1 {
			tenants[i].Weight = 1
		}
		totalWeight += tenants[i].Weight
	}
	limits := make(map[string]int64, len(tenants))
	for i := range tenants {
		q := tenants[i].QuotaBytes
		if q <= 0 {
			q = cfg.BudgetBytes * int64(tenants[i].Weight) / int64(totalWeight)
		}
		tenants[i].QuotaBytes = q
		limits[tenants[i].Name] = q
	}
	s.tenants = tenants
	for i := range s.tenants {
		t := &s.tenants[i]
		s.tenantCounts[t.Name] = &tenantCounters{}
		s.reg.Gauge(obs.TenantSeries(obs.MTenantReservedByte, t.Name)).Set(float64(t.QuotaBytes))
		if t.Token != "" {
			if _, dup := s.byToken[t.Token]; dup {
				return nil, fmt.Errorf("serve: tenants share a token")
			}
			s.byToken[t.Token] = t
		}
	}
	if len(cfg.Tenants) == 0 {
		s.open = &s.tenants[0]
	}
	s.adm = newAdmission(limits)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/queries", s.handleQueries)
	s.mux.HandleFunc("/v1/queries/", s.handleQueries)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"metrics": s.reg.Snapshot(), "status": s.status()})
	})
	return s, nil
}

// Handler returns the service's HTTP handler: the /v1 query API plus the
// /metrics and /debug/stats observability endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the shared metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Journal returns the shared query event journal.
func (s *Server) Journal() *obs.Journal { return s.journal }

// PlanCacheStats returns the shared plan cache's counters (zero when plan
// caching is disabled).
func (s *Server) PlanCacheStats() fuseme.PlanCacheStats {
	if s.pc == nil {
		return fuseme.PlanCacheStats{}
	}
	return s.pc.Stats()
}

// RegisterDataset publishes a named matrix that any tenant may reference as
// {"dataset": name} in a query's inputs. Build matrices with
// fuseme.NewDenseMatrix / NewRandomDenseMatrix / NewRandomSparseMatrix using
// the server's cluster block size.
func (s *Server) RegisterDataset(name string, m *fuseme.Matrix) {
	s.dsMu.Lock()
	s.datasets[name] = m
	s.dsMu.Unlock()
}

// dataset looks up a named dataset.
func (s *Server) dataset(name string) (*fuseme.Matrix, bool) {
	s.dsMu.Lock()
	m, ok := s.datasets[name]
	s.dsMu.Unlock()
	return m, ok
}

// acquireSession takes a pooled session, creating one if the pool has not
// reached its bound yet.
func (s *Server) acquireSession() (*fuseme.Session, error) {
	select {
	case sess := <-s.free:
		return sess, nil
	default:
	}
	s.sessMu.Lock()
	if s.created < s.cfg.Sessions {
		s.created++
		s.sessMu.Unlock()
		opts := []fuseme.Option{fuseme.WithRegistry(s.reg), fuseme.WithScheduler(s.sched)}
		if s.pc != nil {
			opts = append(opts, fuseme.WithPlanCache(s.pc))
		}
		if s.calib != nil {
			opts = append(opts, fuseme.WithCalibrationStore(s.calib))
		}
		opts = append(opts, s.cfg.SessionOptions...)
		sess, err := fuseme.NewSession(s.cfg.Cluster, opts...)
		if err != nil {
			s.sessMu.Lock()
			s.created--
			s.sessMu.Unlock()
			return nil, err
		}
		if s.cfg.Engine != "" {
			if err := sess.SetEngine(s.cfg.Engine); err != nil {
				sess.Close()
				s.sessMu.Lock()
				s.created--
				s.sessMu.Unlock()
				return nil, err
			}
		}
		s.sessMu.Lock()
		s.sessions = append(s.sessions, sess)
		s.sessMu.Unlock()
		return sess, nil
	}
	s.sessMu.Unlock()
	return <-s.free, nil
}

// releaseSession returns a session to the pool.
func (s *Server) releaseSession(sess *fuseme.Session) { s.free <- sess }

// beginRequest counts a submission as in flight unless the service is
// draining.
func (s *Server) beginRequest() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// endRequest retires an in-flight submission, waking Shutdown when the last
// one finishes during a drain.
func (s *Server) endRequest() {
	s.drainMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.draining && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.drainMu.Unlock()
}

// Shutdown drains the service: new submissions are rejected with 503 while
// in-flight plans run to completion (or ctx expires), then every pooled
// session is closed. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	var wait chan struct{}
	if s.inflight > 0 {
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		wait = s.idle
	}
	s.drainMu.Unlock()
	var err error
	if wait != nil {
		select {
		case <-wait:
		case <-ctx.Done():
			err = fmt.Errorf("serve: drain deadline expired with plans still in flight: %w", ctx.Err())
		}
	}
	s.sessMu.Lock()
	sessions := s.sessions
	s.sessions = nil
	s.sessMu.Unlock()
	for _, sess := range sessions {
		if cerr := sess.Close(); err == nil {
			err = cerr
		}
	}
	if s.calibOwned {
		if cerr := s.calib.Save(); err == nil {
			err = cerr
		}
	}
	if s.journalOwned {
		if cerr := s.journal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Close is Shutdown with a 5-second drain deadline.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// authenticate resolves the request's tenant from its token header.
func (s *Server) authenticate(r *http.Request) (*Tenant, error) {
	tok := r.Header.Get("X-FuseMe-Token")
	if tok == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			tok = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if s.open != nil {
		return s.open, nil
	}
	if tok == "" {
		return nil, errors.New("serve: missing tenant token (X-FuseMe-Token or Authorization: Bearer)")
	}
	if t := s.byToken[tok]; t != nil {
		return t, nil
	}
	return nil, errors.New("serve: unknown tenant token")
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfterSeconds is the hint attached to 429/503 responses.
const retryAfterSeconds = 1

func writeRetryable(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
	writeJSON(w, code, httpError{Error: msg})
}

// counters returns the tenant's status mirror.
func (s *Server) counters(tenant string) *tenantCounters {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	c := s.tenantCounts[tenant]
	if c == nil {
		c = &tenantCounters{}
		s.tenantCounts[tenant] = c
	}
	return c
}

// TenantStatus is one tenant's row in the /v1/status document.
type TenantStatus struct {
	Name          string `json:"name"`
	Weight        int    `json:"weight"`
	ReservedBytes int64  `json:"reserved_bytes"`
	InFlightBytes int64  `json:"in_flight_bytes"`
	QueueDepth    int    `json:"queue_depth"`
	Queries       int64  `json:"queries"`
	Errors        int64  `json:"errors"`
	Rejects       int64  `json:"rejects"`
	PlanCacheHits int64  `json:"plan_cache_hits"`
	Tasks         int64  `json:"tasks"`
	WireBytes     int64  `json:"wire_bytes"`
}

// Status is the /v1/status document.
type Status struct {
	Draining     bool                  `json:"draining"`
	Sessions     int                   `json:"sessions"`
	SessionsBusy int                   `json:"sessions_busy"`
	PlanCache    fuseme.PlanCacheStats `json:"plan_cache"`
	// CalibrationGeneration / CalibrationEntries describe the shared
	// calibration store: zero / zero when none is configured. The
	// generation advances on material learned-bandwidth movement (or
	// rotation) and re-keys the plan cache.
	CalibrationGeneration uint64                    `json:"calibration_generation"`
	CalibrationEntries    int                       `json:"calibration_entries"`
	Tenants               []TenantStatus            `json:"tenants"`
	Scheduler             []fuseme.TenantSchedStats `json:"scheduler"`
	RunningTasks          int                       `json:"running_tasks"`
	// Workers is the TCP runtime's membership table (state, epoch per
	// worker); empty under the simulated runtime. Dead and departed
	// workers stay listed — slots are never reused.
	Workers []fuseme.WorkerStatus `json:"workers,omitempty"`
}

func (s *Server) status() Status {
	st := Status{Draining: s.Draining()}
	if s.pc != nil {
		st.PlanCache = s.pc.Stats()
	}
	if s.calib != nil {
		st.CalibrationGeneration = s.calib.Generation()
		st.CalibrationEntries = s.calib.Len()
	}
	s.sessMu.Lock()
	st.Sessions = s.created
	s.sessMu.Unlock()
	st.SessionsBusy = st.Sessions - len(s.free)
	st.Scheduler, st.RunningTasks = s.sched.TenantStats()
	for _, t := range s.tenants {
		used, queued := s.adm.Usage(t.Name)
		c := s.counters(t.Name)
		s.tmu.Lock()
		row := TenantStatus{
			Name: t.Name, Weight: t.Weight, ReservedBytes: t.QuotaBytes,
			InFlightBytes: used, QueueDepth: queued,
			Queries: c.queries, Errors: c.errors, Rejects: c.rejects,
			PlanCacheHits: c.planHits, Tasks: c.tasks, WireBytes: c.bytes,
		}
		s.tmu.Unlock()
		st.Tenants = append(st.Tenants, row)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	s.sessMu.Lock()
	pool := append([]*fuseme.Session(nil), s.sessions...)
	s.sessMu.Unlock()
	for _, sess := range pool {
		if ws := sess.Workers(); ws != nil {
			st.Workers = ws
			break
		}
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, s.status())
}
