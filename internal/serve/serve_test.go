package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fuseme"
	"fuseme/internal/rt/remote"
	"fuseme/internal/serve"
)

// The two workload scripts the soak mixes: the paper's fused NMF kernel and
// the full GNMF multiplicative update (two outputs).
const (
	nmfScript  = "O = X * log(U %*% t(V) + 1e-3)"
	gnmfScript = "U2 = U * (t(V) %*% X) / (t(V) %*% V %*% U)\n" +
		"V2 = V * (X %*% t(U)) / (V %*% (U %*% t(U)))\n"
)

const (
	users, items, rank = 96, 80, 8
	testBlockSize      = 16
)

func testClusterConfig() fuseme.ClusterConfig {
	cc := fuseme.LocalClusterConfig()
	cc.BlockSize = testBlockSize
	return cc
}

// nmfInputs returns the request inputs and the matching local matrices for
// one tenant's NMF query (deterministic per seed).
func nmfInputs(seed int64) (map[string]serve.InputSpec, map[string]*fuseme.Matrix) {
	specs := map[string]serve.InputSpec{
		"X": {Rows: users, Cols: items, Random: &serve.RandomSpec{Kind: "sparse", Density: 0.08, Lo: 1, Hi: 5, Seed: seed}},
		"U": {Rows: users, Cols: rank, Random: &serve.RandomSpec{Kind: "dense", Lo: 0.5, Hi: 1.5, Seed: seed + 1}},
		"V": {Rows: items, Cols: rank, Random: &serve.RandomSpec{Kind: "dense", Lo: 0.5, Hi: 1.5, Seed: seed + 2}},
	}
	local := map[string]*fuseme.Matrix{
		"X": fuseme.NewRandomSparseMatrix(users, items, testBlockSize, 0.08, 1, 5, seed),
		"U": fuseme.NewRandomDenseMatrix(users, rank, testBlockSize, 0.5, 1.5, seed+1),
		"V": fuseme.NewRandomDenseMatrix(items, rank, testBlockSize, 0.5, 1.5, seed+2),
	}
	return specs, local
}

// gnmfInputs builds GNMF's X (users x items), U (k x items), V (users x k).
func gnmfInputs(seed int64) (map[string]serve.InputSpec, map[string]*fuseme.Matrix) {
	specs := map[string]serve.InputSpec{
		"X": {Rows: users, Cols: items, Random: &serve.RandomSpec{Kind: "sparse", Density: 0.08, Lo: 1, Hi: 5, Seed: seed}},
		"U": {Rows: rank, Cols: items, Random: &serve.RandomSpec{Kind: "dense", Lo: 0.5, Hi: 1.5, Seed: seed + 1}},
		"V": {Rows: users, Cols: rank, Random: &serve.RandomSpec{Kind: "dense", Lo: 0.5, Hi: 1.5, Seed: seed + 2}},
	}
	local := map[string]*fuseme.Matrix{
		"X": fuseme.NewRandomSparseMatrix(users, items, testBlockSize, 0.08, 1, 5, seed),
		"U": fuseme.NewRandomDenseMatrix(rank, items, testBlockSize, 0.5, 1.5, seed+1),
		"V": fuseme.NewRandomDenseMatrix(users, rank, testBlockSize, 0.5, 1.5, seed+2),
	}
	return specs, local
}

// serialReference executes a script on a fresh single session and returns
// the dense outputs.
func serialReference(t *testing.T, cc fuseme.ClusterConfig, script string, inputs map[string]*fuseme.Matrix) map[string][]float64 {
	t.Helper()
	sess, err := fuseme.NewSession(cc)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for name, m := range inputs {
		sess.Bind(name, m)
	}
	out, err := sess.Query(script)
	if err != nil {
		t.Fatal(err)
	}
	res := make(map[string][]float64, len(out))
	for name, m := range out {
		res[name] = m.Dense()
	}
	return res
}

// postQuery submits one request and returns the HTTP status, the decoded
// response (on 200) and the raw body.
func postQuery(t *testing.T, url, token string, req serve.QueryRequest) (int, *serve.QueryResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		hreq.Header.Set("X-FuseMe-Token", token)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, raw
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, raw)
	}
	return resp.StatusCode, &qr, raw
}

func getStatus(t *testing.T, url string) serve.Status {
	t.Helper()
	resp, err := http.Get(url + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func requireExact(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: differs from serial run at %d: %g vs %g", ctx, i, got[i], want[i])
		}
	}
}

// requireClose enforces the TCP runtime's "bit-close" contract (the same
// 1e-12 relative bound as the block-cache differential suite): network
// arrival order makes cross-worker aggregation non-associative in the last
// ulp, so TCP runs are not bit-reproducible the way sim runs are.
func requireClose(t *testing.T, ctx string, got, want []float64, rel float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > rel*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("%s: differs at %d: %g vs %g", ctx, i, got[i], want[i])
		}
	}
}

// TestServeConcurrentTenantsMatchSerial is the acceptance test: eight
// authenticated tenants hammer one warm sim instance concurrently with a
// GNMF and an NMF submission each, and every response is bit-identical to a
// serial one-session run of the same query. It then checks the plan cache
// took hits and that per-tenant counters surfaced on /v1/status and
// /metrics.
func TestServeConcurrentTenantsMatchSerial(t *testing.T) {
	const numTenants = 8
	var tenants []serve.Tenant
	for i := 0; i < numTenants; i++ {
		tenants = append(tenants, serve.Tenant{
			Name: fmt.Sprintf("t%d", i), Token: fmt.Sprintf("tok%d", i), Weight: i%3 + 1,
		})
	}
	cc := testClusterConfig()
	srv, err := serve.New(serve.Config{Cluster: cc, Tenants: tenants, Sessions: numTenants})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type job struct {
		tenant int
		script string
		specs  map[string]serve.InputSpec
		want   map[string][]float64
	}
	var jobs []job
	for i := 0; i < numTenants; i++ {
		seed := int64(100 * (i + 1))
		gSpecs, gLocal := gnmfInputs(seed)
		nSpecs, nLocal := nmfInputs(seed + 50)
		jobs = append(jobs,
			job{i, gnmfScript, gSpecs, serialReference(t, cc, gnmfScript, gLocal)},
			job{i, nmfScript, nSpecs, serialReference(t, cc, nmfScript, nLocal)},
		)
	}

	var wg sync.WaitGroup
	hits := make([]bool, len(jobs))
	for j, jb := range jobs {
		wg.Add(1)
		go func(j int, jb job) {
			defer wg.Done()
			code, qr, raw := postQuery(t, ts.URL, fmt.Sprintf("tok%d", jb.tenant), serve.QueryRequest{
				Script: jb.script, Inputs: jb.specs,
			})
			if code != http.StatusOK {
				t.Errorf("job %d: status %d: %s", j, code, raw)
				return
			}
			if qr.Tenant != fmt.Sprintf("t%d", jb.tenant) {
				t.Errorf("job %d: tenant %q", j, qr.Tenant)
			}
			for name, want := range jb.want {
				out, ok := qr.Outputs[name]
				if !ok {
					t.Errorf("job %d: missing output %q", j, name)
					return
				}
				requireExact(t, fmt.Sprintf("job %d output %s", j, name), out.Values, want)
			}
			hits[j] = qr.PlanCacheHit
		}(j, jb)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// 16 submissions of 2 distinct plan structures: the cache must have been
	// hit. (How many of the 16 hit depends on arrival order; at least one
	// submission per structure misses.)
	pcs := srv.PlanCacheStats()
	if pcs.Hits < 1 || pcs.Misses < 1 {
		t.Fatalf("plan cache hits=%d misses=%d, want both >= 1", pcs.Hits, pcs.Misses)
	}
	anyHit := false
	for _, h := range hits {
		anyHit = anyHit || h
	}
	if !anyHit {
		t.Fatal("no response reported plan_cache_hit")
	}

	st := getStatus(t, ts.URL)
	if len(st.Tenants) != numTenants {
		t.Fatalf("status lists %d tenants, want %d", len(st.Tenants), numTenants)
	}
	var statusHits int64
	for _, row := range st.Tenants {
		if row.Queries != 2 {
			t.Errorf("tenant %s: %d queries, want 2", row.Name, row.Queries)
		}
		if row.Errors != 0 || row.Rejects != 0 {
			t.Errorf("tenant %s: errors=%d rejects=%d", row.Name, row.Errors, row.Rejects)
		}
		if row.ReservedBytes <= 0 {
			t.Errorf("tenant %s: reserved_bytes = %d", row.Name, row.ReservedBytes)
		}
		if row.Tasks <= 0 {
			t.Errorf("tenant %s: tasks = %d", row.Name, row.Tasks)
		}
		statusHits += row.PlanCacheHits
	}
	if statusHits != pcs.Hits {
		t.Errorf("status plan hits %d != cache hits %d", statusHits, pcs.Hits)
	}
	if st.PlanCache.Hits != pcs.Hits {
		t.Errorf("status plan_cache.hits %d != %d", st.PlanCache.Hits, pcs.Hits)
	}

	// The counters must be visible on the Prometheus endpoint too.
	metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"fuseme_plancache_hits_total",
		"fuseme_serve_queries_total 16",
		`fuseme_tenant_queries_total{tenant="t0"} 2`,
		`fuseme_tenant_reserved_bytes{tenant="t3"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var promHits int64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "fuseme_plancache_hits_total ") {
			fmt.Sscanf(line, "fuseme_plancache_hits_total %d", &promHits)
		}
	}
	if promHits != pcs.Hits {
		t.Errorf("/metrics plancache hits %d, want %d", promHits, pcs.Hits)
	}
}

// TestServeAdmissionControl checks the three admission outcomes over HTTP:
// a submission larger than the tenant's reservation is a 413, concurrent
// full-reservation submissions beyond the queue bound are 429 with
// Retry-After, and the rejects surface in /v1/status.
func TestServeAdmissionControl(t *testing.T) {
	quota := int64(1 << 20)
	srv, err := serve.New(serve.Config{
		Cluster: testClusterConfig(),
		Tenants: []serve.Tenant{{Name: "small", Token: "s", QuotaBytes: quota}},
		// One waiter max, and a wait far shorter than a query execution.
		QueueDepth: 1,
		QueueWait:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, _ := gnmfInputs(7)

	// Over the whole reservation: never runnable, 413.
	code, _, body := postQuery(t, ts.URL, "s", serve.QueryRequest{
		Script: nmfScript, Inputs: specs, MemBytes: quota + 1,
	})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission: status %d: %s", code, body)
	}

	// Saturate: every submission demands the full reservation, so they
	// serialize; with a one-deep queue and a tiny wait, overlapping
	// submissions must produce 429s — and at least one succeeds. Under a
	// heavily loaded scheduler the goroutines can stagger enough that the
	// requests never overlap, so retry the round a bounded number of times
	// until both outcomes are observed.
	const n = 6
	ok, rejected := 0, 0
	for attempt := 0; attempt < 25 && (ok == 0 || rejected == 0); attempt++ {
		codes := make([]int, n)
		retryAfter := make([]string, n)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body, _ := json.Marshal(serve.QueryRequest{
					Script: gnmfScript, Inputs: specs, MemBytes: quota, OmitValues: true,
				})
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
				req.Header.Set("X-FuseMe-Token", "s")
				<-start
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
				codes[i] = resp.StatusCode
				retryAfter[i] = resp.Header.Get("Retry-After")
			}(i)
		}
		close(start)
		wg.Wait()
		ok, rejected = 0, 0
		for i, c := range codes {
			switch c {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				rejected++
				if retryAfter[i] == "" {
					t.Error("429 without Retry-After")
				}
			default:
				t.Errorf("unexpected status %d", c)
			}
		}
	}
	if ok == 0 {
		t.Fatal("no submission succeeded")
	}
	if rejected == 0 {
		t.Fatal("no submission was rejected under a saturated reservation")
	}

	st := getStatus(t, ts.URL)
	if len(st.Tenants) != 1 || st.Tenants[0].Rejects < int64(rejected)+1 {
		t.Fatalf("status rejects = %+v, want >= %d", st.Tenants, rejected+1)
	}
	if st.Tenants[0].InFlightBytes != 0 {
		t.Fatalf("in-flight bytes %d after all queries finished", st.Tenants[0].InFlightBytes)
	}
}

func TestServeAuth(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Cluster: testClusterConfig(),
		Tenants: []serve.Tenant{{Name: "acme", Token: "s3cret"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, _ := nmfInputs(1)
	req := serve.QueryRequest{Script: nmfScript, Inputs: specs, OmitValues: true}

	if code, _, _ := postQuery(t, ts.URL, "", req); code != http.StatusUnauthorized {
		t.Fatalf("no token: status %d", code)
	}
	if code, _, _ := postQuery(t, ts.URL, "wrong", req); code != http.StatusUnauthorized {
		t.Fatalf("bad token: status %d", code)
	}
	if code, _, _ := postQuery(t, ts.URL, "s3cret", req); code != http.StatusOK {
		t.Fatalf("X-FuseMe-Token: status %d", code)
	}

	// Authorization: Bearer works too.
	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	hreq.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer token: status %d", resp.StatusCode)
	}
}

func TestServeBadRequests(t *testing.T) {
	srv, err := serve.New(serve.Config{Cluster: testClusterConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/v1/query"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/query: status %d", resp.StatusCode)
		}
	}
	for name, req := range map[string]serve.QueryRequest{
		"empty script":    {Script: ""},
		"unknown dataset": {Script: "O = X + X", Inputs: map[string]serve.InputSpec{"X": {Dataset: "nope"}}},
		"empty spec":      {Script: "O = X + X", Inputs: map[string]serve.InputSpec{"X": {}}},
		"bad random kind": {Script: "O = X + X", Inputs: map[string]serve.InputSpec{"X": {Rows: 4, Cols: 4, Random: &serve.RandomSpec{Kind: "blob"}}}},
		"bad script":      {Script: "O = ???", Inputs: map[string]serve.InputSpec{"X": {Rows: 4, Cols: 4, Random: &serve.RandomSpec{}}}},
	} {
		code, _, _ := postQuery(t, ts.URL, "", req)
		if code != http.StatusBadRequest && code != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d", name, code)
		}
	}
}

// TestServeDataset checks a server-side named dataset shared by reference.
func TestServeDataset(t *testing.T) {
	cc := testClusterConfig()
	srv, err := serve.New(serve.Config{Cluster: cc})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	x := fuseme.NewRandomSparseMatrix(users, items, testBlockSize, 0.08, 1, 5, 11)
	srv.RegisterDataset("ratings", x)

	specs, local := nmfInputs(21)
	specs["X"] = serve.InputSpec{Dataset: "ratings"}
	local["X"] = x
	want := serialReference(t, cc, nmfScript, local)

	code, qr, raw := postQuery(t, ts.URL, "", serve.QueryRequest{Script: nmfScript, Inputs: specs})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	requireExact(t, "dataset query", qr.Outputs["O"].Values, want["O"])
}

// TestServeDrain checks shutdown semantics: in-flight submissions complete,
// new ones get 503 + Retry-After, and Shutdown is idempotent.
func TestServeDrain(t *testing.T) {
	srv, err := serve.New(serve.Config{Cluster: testClusterConfig()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, _ := gnmfInputs(5)
	req := serve.QueryRequest{Script: gnmfScript, Inputs: specs, OmitValues: true}

	// Launch a query, then drain while it (plausibly) still runs: it must
	// complete with 200 and Shutdown must wait for it.
	codeCh := make(chan int, 1)
	go func() {
		code, _, _ := postQuery(t, ts.URL, "", req)
		codeCh <- code
	}()
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := <-codeCh; code != http.StatusOK && code != http.StatusServiceUnavailable {
		t.Fatalf("in-flight query: status %d", code)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}

	// New submissions are refused while draining.
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if st := getStatus(t, ts.URL); !st.Draining {
		t.Fatal("/v1/status draining = false")
	}

	// Second shutdown is a no-op.
	if err := srv.Close(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestServeSoakTCP runs the acceptance soak on the TCP runtime: one warm
// coordinator over two in-process workers, eight tenants submitting mixed
// GNMF and NMF queries concurrently, every response bit-identical to a
// serial one-session TCP run and within float tolerance of the simulator.
func TestServeSoakTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP soak skipped in -short mode")
	}
	addrs := make([]string, 2)
	for i := range addrs {
		w, err := remote.NewWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		addrs[i] = w.Addr()
	}
	cc := testClusterConfig()
	cc.Runtime = "tcp"
	cc.Workers = addrs
	cc.Nodes = len(addrs)

	const numTenants = 8
	var tenants []serve.Tenant
	for i := 0; i < numTenants; i++ {
		tenants = append(tenants, serve.Tenant{
			Name: fmt.Sprintf("t%d", i), Token: fmt.Sprintf("tok%d", i), Weight: i%2 + 1,
		})
	}
	srv, err := serve.New(serve.Config{Cluster: cc, Tenants: tenants, Sessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Serial references on the same TCP cluster (separate session, same
	// workers) and on the simulator.
	simCC := testClusterConfig()
	type job struct {
		tenant  int
		script  string
		specs   map[string]serve.InputSpec
		tcpWant map[string][]float64
		simWant map[string][]float64
	}
	var jobs []job
	for i := 0; i < numTenants; i++ {
		seed := int64(1000 + 10*i)
		var specs map[string]serve.InputSpec
		var local map[string]*fuseme.Matrix
		script := nmfScript
		if i%2 == 0 {
			specs, local = gnmfInputs(seed)
			script = gnmfScript
		} else {
			specs, local = nmfInputs(seed)
		}
		jobs = append(jobs, job{
			tenant:  i,
			script:  script,
			specs:   specs,
			tcpWant: serialReference(t, cc, script, local),
			simWant: serialReference(t, simCC, script, local),
		})
	}

	var wg sync.WaitGroup
	for j, jb := range jobs {
		wg.Add(1)
		go func(j int, jb job) {
			defer wg.Done()
			code, qr, raw := postQuery(t, ts.URL, fmt.Sprintf("tok%d", jb.tenant), serve.QueryRequest{
				Script: jb.script, Inputs: jb.specs,
			})
			if code != http.StatusOK {
				t.Errorf("job %d: status %d: %s", j, code, raw)
				return
			}
			for name, want := range jb.tcpWant {
				requireClose(t, fmt.Sprintf("job %d output %s (vs serial tcp)", j, name), qr.Outputs[name].Values, want, 1e-12)
			}
			for name, want := range jb.simWant {
				requireClose(t, fmt.Sprintf("job %d output %s (vs sim)", j, name), qr.Outputs[name].Values, want, 1e-9)
			}
			if qr.Stats.Tasks == 0 {
				t.Errorf("job %d: zero tasks", j)
			}
		}(j, jb)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := getStatus(t, ts.URL)
	var queries int64
	for _, row := range st.Tenants {
		queries += row.Queries
	}
	if queries != numTenants {
		t.Fatalf("status counts %d queries, want %d", queries, numTenants)
	}
	if pcs := srv.PlanCacheStats(); pcs.Hits+pcs.Misses == 0 {
		t.Fatal("plan cache never consulted")
	}
	// A clean drain closes the coordinator sessions without error.
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
