package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fuseme"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("acme:s3cret:2:4096, beta:hunter2 ,gamma::3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{
		{Name: "acme", Token: "s3cret", Weight: 2, QuotaBytes: 4096 << 20},
		{Name: "beta", Token: "hunter2", Weight: 1},
		{Name: "gamma", Token: "", Weight: 3},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseTenantsEmpty(t *testing.T) {
	got, err := ParseTenants("  ")
	if err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v; want nil, nil", got, err)
	}
}

func TestParseTenantsErrors(t *testing.T) {
	for _, spec := range []string{
		"nameonly",  // no token separator
		":tok",      // empty name
		"a:t:0",     // zero weight
		"a:t:x",     // non-numeric weight
		"a:t:1:0",   // zero quota
		"a:t:1:q",   // non-numeric quota
		"a:t:1:2:3", // too many fields
		"a:t:-1",    // negative weight
	} {
		if _, err := ParseTenants(spec); err == nil {
			t.Errorf("ParseTenants(%q) accepted", spec)
		}
	}
}

func TestParseDataset(t *testing.T) {
	name, m, err := ParseDataset("X=dense:20x30:1:5:42", 16)
	if err != nil {
		t.Fatal(err)
	}
	if name != "X" {
		t.Fatalf("name = %q", name)
	}
	if r, c := m.Dims(); r != 20 || c != 30 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if ref := fuseme.NewRandomDenseMatrix(20, 30, 16, 1, 5, 42); ref.Dense()[0] != m.Dense()[0] {
		t.Fatal("dense dataset not deterministic per seed")
	}

	name, m, err = ParseDataset("S=sparse:40x40:0.1:1:2:7", 16)
	if err != nil {
		t.Fatal(err)
	}
	if name != "S" {
		t.Fatalf("name = %q", name)
	}
	if m.NNZ() == 0 || m.Density() > 0.5 {
		t.Fatalf("sparse dataset nnz=%d density=%g", m.NNZ(), m.Density())
	}
}

func TestParseDatasetFile(t *testing.T) {
	src := fuseme.NewRandomDenseMatrix(10, 12, 16, 0, 1, 3)
	path := filepath.Join(t.TempDir(), "m.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	name, m, err := ParseDataset("M=file:"+path, 16)
	if err != nil {
		t.Fatal(err)
	}
	if name != "M" {
		t.Fatalf("name = %q", name)
	}
	a, b := src.Dense(), m.Dense()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("file round-trip differs at %d", i)
		}
	}
}

func TestParseDatasetErrors(t *testing.T) {
	for _, spec := range []string{
		"noequals",
		"=dense:2x2:0:1:1",       // empty name
		"X=blob:2x2",             // unknown kind
		"X=dense:2x2:0:1",        // missing seed
		"X=dense:axb:0:1:1",      // bad dims
		"X=sparse:2x2:0:1:5:1",   // density 0
		"X=sparse:2x2:1.5:1:5:1", // density > 1
		"X=file:/does/not/exist", // missing file
	} {
		if _, _, err := ParseDataset(spec, 16); err == nil {
			t.Errorf("ParseDataset(%q) accepted", spec)
		}
	}
	if _, _, err := ParseDataset("X=dense:0x5:0:1:1", 16); err == nil ||
		!strings.Contains(err.Error(), "dims") {
		t.Errorf("zero rows: err = %v", err)
	}
}
