package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"fuseme"
	"fuseme/internal/obs"
	"fuseme/internal/serve"
)

// getJSON decodes a GET response into v, returning the status code.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestQueryIntrospection runs one query and checks GET /v1/queries and
// GET /v1/queries/{id}: the lifecycle event sequence, the EXPLAIN ANALYZE
// stage list, and — the invariant the endpoint is built on — that the
// per-stage flight records served over HTTP are byte-for-byte the records the
// session's flight recorder wrote.
func TestQueryIntrospection(t *testing.T) {
	var flightBuf bytes.Buffer
	srv, err := serve.New(serve.Config{
		Cluster:        testClusterConfig(),
		Tenants:        []serve.Tenant{{Name: "acme", Token: "tok", Weight: 1}},
		Sessions:       1,
		SessionOptions: []fuseme.Option{fuseme.WithFlightWriter(&flightBuf)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs, _ := nmfInputs(1)
	code, qr, raw := postQuery(t, ts.URL, "tok", serve.QueryRequest{
		Script: nmfScript, Inputs: specs, OmitValues: true,
	})
	if code != http.StatusOK {
		t.Fatalf("query: status %d: %s", code, raw)
	}
	_ = qr

	// The list endpoint: one finished query, no live ones.
	var list serve.QueryList
	if code := getJSON(t, ts.URL+"/v1/queries", &list); code != http.StatusOK {
		t.Fatalf("/v1/queries: status %d", code)
	}
	if len(list.Live) != 0 || len(list.Recent) != 1 {
		t.Fatalf("list = %d live / %d recent, want 0/1", len(list.Live), len(list.Recent))
	}
	rec := list.Recent[0]
	if rec.Tenant != "acme" || rec.State != "done" || rec.ExecMillis <= 0 {
		t.Fatalf("record = %+v", rec)
	}

	// The detail endpoint: plan annotation, events in order, stage statuses.
	var d serve.QueryDetail
	if code := getJSON(t, ts.URL+"/v1/queries/"+rec.ID, &d); code != http.StatusOK {
		t.Fatalf("/v1/queries/%s: status %d", rec.ID, code)
	}
	if d.Plan == "" || d.Engine == "" || d.PredSeconds <= 0 {
		t.Fatalf("detail plan annotation missing: engine=%q pred=%g plan=%q", d.Engine, d.PredSeconds, d.Plan)
	}
	if len(d.Stages) == 0 {
		t.Fatal("detail has no stages")
	}
	var types []obs.EventType
	for _, e := range d.Events {
		types = append(types, e.Type)
	}
	if len(types) < 4 || types[0] != obs.EvReceived || types[len(types)-1] != obs.EvDone {
		t.Fatalf("event sequence = %v", types)
	}
	sawPlanned := false
	for _, e := range d.Events {
		if e.Type == obs.EvPlanned {
			sawPlanned = true
		}
	}
	if !sawPlanned {
		t.Fatalf("no planned event in %v", types)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq != d.Events[i-1].Seq+1 {
			t.Fatalf("event %d: seq %d after %d", i, d.Events[i].Seq, d.Events[i-1].Seq)
		}
	}

	// Flush the pooled session's flight recorder and compare: the stages the
	// endpoint served must be exactly the records the recorder wrote.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadFlightRecords(&flightBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(d.Stages) {
		t.Fatalf("flight recorder wrote %d records, endpoint served %d stages", len(recs), len(d.Stages))
	}
	for i, st := range d.Stages {
		if st.Flight == nil {
			t.Fatalf("stage %d has no flight record", i)
		}
		if !reflect.DeepEqual(*st.Flight, recs[i]) {
			t.Errorf("stage %d: endpoint flight %+v\n!= recorder %+v", i, *st.Flight, recs[i])
		}
		if st.Stage != recs[i].Stage || st.Op != recs[i].Op {
			t.Errorf("stage %d labels: %s/%s vs %s/%s", i, st.Stage, st.Op, recs[i].Stage, recs[i].Op)
		}
	}

	// Tenant SLO histograms observed the query.
	snap := srv.Registry().Snapshot()
	if h := snap.Histograms[obs.TenantSeries(obs.MTenantQueueSeconds, "acme")]; h.Count != 1 {
		t.Errorf("tenant queue histogram = %+v, want one observation", h)
	}
	if h := snap.Histograms[obs.TenantSeries(obs.MTenantQuerySeconds, "acme")]; h.Count != 1 || h.P95 <= 0 {
		t.Errorf("tenant query histogram = %+v, want one observation with quantiles", h)
	}
}

// TestQueriesEndpointErrors pins the endpoint's error contract.
func TestQueriesEndpointErrors(t *testing.T) {
	srv, err := serve.New(serve.Config{Cluster: testClusterConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var v any
	if code := getJSON(t, ts.URL+"/v1/queries/q-999999", &v); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", code)
	}
	resp, err := http.Post(ts.URL+"/v1/queries", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/queries: status %d, want 405", resp.StatusCode)
	}
}

// TestStatusUnderConcurrentQueries hammers /v1/status and /v1/queries while
// a batch of concurrent queries runs, checking the introspection endpoints
// stay consistent (every submission eventually lands in the registry with a
// terminal state and a coherent event log).
func TestStatusUnderConcurrentQueries(t *testing.T) {
	srv, err := serve.New(serve.Config{
		Cluster:  testClusterConfig(),
		Tenants:  []serve.Tenant{{Name: "acme", Token: "a", Weight: 2}, {Name: "beta", Token: "b", Weight: 1}},
		Sessions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const perTenant = 4
	var wg sync.WaitGroup
	errs := make(chan error, 2*perTenant)
	for i := 0; i < perTenant; i++ {
		for _, tok := range []string{"a", "b"} {
			wg.Add(1)
			go func(tok string, seed int64) {
				defer wg.Done()
				specs, _ := nmfInputs(seed)
				code, _, raw := postQuery(t, ts.URL, tok, serve.QueryRequest{
					Script: nmfScript, Inputs: specs, OmitValues: true,
				})
				if code != http.StatusOK {
					errs <- fmt.Errorf("tenant %s: status %d: %s", tok, code, raw)
				}
			}(tok, int64(i+1))
		}
	}
	// Poll the observability endpoints while queries are in flight.
	poll := make(chan struct{})
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-poll:
				return
			default:
			}
			var st serve.Status
			if code := getJSON(t, ts.URL+"/v1/status", &st); code != http.StatusOK {
				errs <- fmt.Errorf("/v1/status: status %d", code)
				return
			}
			if st.SessionsBusy < 0 || st.SessionsBusy > st.Sessions {
				errs <- fmt.Errorf("sessions busy %d of %d", st.SessionsBusy, st.Sessions)
				return
			}
			var list serve.QueryList
			if code := getJSON(t, ts.URL+"/v1/queries", &list); code != http.StatusOK {
				errs <- fmt.Errorf("/v1/queries: status %d", code)
				return
			}
			for _, q := range list.Live {
				if q.State != "queued" && q.State != "running" {
					errs <- fmt.Errorf("live query %s in state %q", q.ID, q.State)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(poll)
	pollWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var list serve.QueryList
	getJSON(t, ts.URL+"/v1/queries", &list)
	if len(list.Live) != 0 || len(list.Recent) != 2*perTenant {
		t.Fatalf("after drain: %d live, %d recent, want 0/%d", len(list.Live), len(list.Recent), 2*perTenant)
	}
	for _, q := range list.Recent {
		if q.State != "done" {
			t.Errorf("query %s finished in state %q", q.ID, q.State)
		}
		var d serve.QueryDetail
		if code := getJSON(t, ts.URL+"/v1/queries/"+q.ID, &d); code != http.StatusOK {
			t.Fatalf("detail %s: status %d", q.ID, code)
		}
		if len(d.Events) == 0 || d.Events[len(d.Events)-1].Type != obs.EvDone {
			t.Errorf("query %s: incomplete event log (%d events)", q.ID, len(d.Events))
		}
	}
	var st serve.Status
	getJSON(t, ts.URL+"/v1/status", &st)
	var total int64
	for _, ten := range st.Tenants {
		total += ten.Queries
	}
	if total != 2*perTenant {
		t.Fatalf("tenant query counters sum to %d, want %d", total, 2*perTenant)
	}
}
