package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission errors. The HTTP layer maps ErrTooLarge to 413 and the other two
// to 429 with a Retry-After header.
var (
	// ErrTooLarge reports a submission whose memory demand exceeds the
	// tenant's whole reservation: it can never run under the current quota.
	ErrTooLarge = errors.New("serve: submission exceeds the tenant's memory reservation")
	// ErrQueueFull reports that the tenant's admission queue is at capacity.
	ErrQueueFull = errors.New("serve: tenant admission queue is full")
	// ErrQueueTimeout reports that a queued submission waited out its grant
	// deadline without memory becoming available.
	ErrQueueTimeout = errors.New("serve: queued submission timed out waiting for memory")
)

// admission carves the cluster memory budget into per-tenant reservations
// and grants query submissions against them. A submission that would push a
// tenant's in-flight demand past its reservation queues (bounded FIFO, with
// a wait deadline) instead of overcommitting the cluster.
type admission struct {
	mu      sync.Mutex
	tenants map[string]*reservation
}

// reservation is one tenant's carve-out of the cluster budget.
type reservation struct {
	limit   int64
	used    int64
	waiters []*admWaiter // FIFO
}

// admWaiter is one queued submission awaiting a grant.
type admWaiter struct {
	demand  int64
	granted chan struct{} // closed on grant
	gone    bool          // abandoned (timed out); skip when draining the queue
}

// newAdmission builds the controller from the per-tenant reservation table.
func newAdmission(limits map[string]int64) *admission {
	a := &admission{tenants: make(map[string]*reservation, len(limits))}
	for name, limit := range limits {
		a.tenants[name] = &reservation{limit: limit}
	}
	return a
}

// Reservation returns the tenant's byte limit (0 for unknown tenants).
func (a *admission) Reservation(tenant string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r := a.tenants[tenant]; r != nil {
		return r.limit
	}
	return 0
}

// Usage returns the tenant's in-flight reserved bytes and queue depth.
func (a *admission) Usage(tenant string) (used int64, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.tenants[tenant]
	if r == nil {
		return 0, 0
	}
	return r.used, r.liveWaiters()
}

func (r *reservation) liveWaiters() int {
	n := 0
	for _, w := range r.waiters {
		if !w.gone {
			n++
		}
	}
	return n
}

// Acquire reserves demand bytes for tenant, queueing up to maxWait when the
// reservation is currently exhausted. It returns the release function on
// success; on failure the error is one of ErrTooLarge, ErrQueueFull or
// ErrQueueTimeout. queueCap bounds the tenant's waiter queue.
func (a *admission) Acquire(tenant string, demand int64, queueCap int, maxWait time.Duration) (release func(), err error) {
	if demand < 0 {
		return nil, fmt.Errorf("serve: negative memory demand %d", demand)
	}
	a.mu.Lock()
	r := a.tenants[tenant]
	if r == nil {
		a.mu.Unlock()
		return nil, fmt.Errorf("serve: unknown tenant %q", tenant)
	}
	if demand > r.limit {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: need %d bytes, reservation is %d", ErrTooLarge, demand, r.limit)
	}
	// Grant immediately only when nothing is queued ahead: FIFO order keeps a
	// stream of small queries from starving one large queued query forever.
	if r.used+demand <= r.limit && r.liveWaiters() == 0 {
		r.used += demand
		a.mu.Unlock()
		return a.releaseFunc(r, demand), nil
	}
	if r.liveWaiters() >= queueCap {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %d submissions already queued", ErrQueueFull, queueCap)
	}
	w := &admWaiter{demand: demand, granted: make(chan struct{})}
	r.waiters = append(r.waiters, w)
	a.mu.Unlock()

	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case <-w.granted:
		return a.releaseFunc(r, demand), nil
	case <-timer.C:
	}
	a.mu.Lock()
	select {
	case <-w.granted:
		// Granted in the race window between timeout and lock: keep it.
		a.mu.Unlock()
		return a.releaseFunc(r, demand), nil
	default:
	}
	w.gone = true
	a.mu.Unlock()
	return nil, fmt.Errorf("%w: waited %s", ErrQueueTimeout, maxWait)
}

// releaseFunc returns the idempotent release of a demand-byte grant.
func (a *admission) releaseFunc(r *reservation, demand int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			r.used -= demand
			r.grantLocked()
			a.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters in FIFO order while they fit.
func (r *reservation) grantLocked() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if w.gone {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.used+w.demand > r.limit {
			return
		}
		r.used += w.demand
		r.waiters = r.waiters[1:]
		close(w.granted)
	}
}
