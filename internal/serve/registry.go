package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"fuseme/internal/obs"
)

// maxRecentQueries bounds the finished-query ring behind GET /v1/queries.
const maxRecentQueries = 64

// maxScriptPreview truncates the script echoed in query records.
const maxScriptPreview = 200

// QueryRecord is one query's row in the registry: live while executing,
// retained in the recent ring afterwards.
type QueryRecord struct {
	ID               string  `json:"id"`
	Tenant           string  `json:"tenant"`
	State            string  `json:"state"` // queued, running, done, failed, rejected
	Script           string  `json:"script,omitempty"`
	ReceivedUnixNano int64   `json:"received_unix_nano"`
	MemBytes         int64   `json:"mem_bytes,omitempty"`
	QueueMillis      float64 `json:"queue_ms,omitempty"`
	ExecMillis       float64 `json:"exec_ms,omitempty"`
	PlanCacheHit     bool    `json:"plan_cache_hit,omitempty"`
	Error            string  `json:"error,omitempty"`
}

// queryRegistry tracks live and recently finished queries by id.
type queryRegistry struct {
	mu     sync.Mutex
	next   int64
	live   map[string]*QueryRecord
	recent []*QueryRecord // oldest first, bounded
}

func newQueryRegistry() *queryRegistry {
	return &queryRegistry{live: map[string]*QueryRecord{}}
}

// begin registers a new query and returns its record (owned by the registry;
// mutate via the update/finish methods).
func (qr *queryRegistry) begin(tenant, script string, mem int64) *QueryRecord {
	if len(script) > maxScriptPreview {
		script = script[:maxScriptPreview] + "..."
	}
	qr.mu.Lock()
	defer qr.mu.Unlock()
	qr.next++
	rec := &QueryRecord{
		ID:               fmt.Sprintf("q-%06d", qr.next),
		Tenant:           tenant,
		State:            "queued",
		Script:           script,
		ReceivedUnixNano: time.Now().UnixNano(),
		MemBytes:         mem,
	}
	qr.live[rec.ID] = rec
	return rec
}

// update applies fn to the record under the registry lock.
func (qr *queryRegistry) update(rec *QueryRecord, fn func(*QueryRecord)) {
	qr.mu.Lock()
	fn(rec)
	qr.mu.Unlock()
}

// finish retires a record from the live table into the recent ring with the
// given terminal state.
func (qr *queryRegistry) finish(rec *QueryRecord, state string, fn func(*QueryRecord)) {
	qr.mu.Lock()
	rec.State = state
	if fn != nil {
		fn(rec)
	}
	delete(qr.live, rec.ID)
	qr.recent = append(qr.recent, rec)
	if len(qr.recent) > maxRecentQueries {
		qr.recent = qr.recent[len(qr.recent)-maxRecentQueries:]
	}
	qr.mu.Unlock()
}

// lookup finds a record (live or recent) by id.
func (qr *queryRegistry) lookup(id string) (QueryRecord, bool) {
	qr.mu.Lock()
	defer qr.mu.Unlock()
	if rec := qr.live[id]; rec != nil {
		return *rec, true
	}
	for i := len(qr.recent) - 1; i >= 0; i-- {
		if qr.recent[i].ID == id {
			return *qr.recent[i], true
		}
	}
	return QueryRecord{}, false
}

// list snapshots the registry: live queries (by id) then recent ones, newest
// first.
func (qr *queryRegistry) list() (live, recent []QueryRecord) {
	qr.mu.Lock()
	defer qr.mu.Unlock()
	for _, rec := range qr.live {
		live = append(live, *rec)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	for i := len(qr.recent) - 1; i >= 0; i-- {
		recent = append(recent, *qr.recent[i])
	}
	return live, recent
}

// QueryList is the GET /v1/queries document.
type QueryList struct {
	Live   []QueryRecord `json:"live"`
	Recent []QueryRecord `json:"recent"`
}

// StageStatus is one executed stage of a query detail: the flight record the
// executor measured (identical to the -flight-out line for the stage) plus
// the stage's task-duration skew and per-worker placement when the detector
// was on.
type StageStatus struct {
	Stage  string            `json:"stage"`
	Op     string            `json:"op,omitempty"`
	Flight *obs.FlightRecord `json:"flight,omitempty"`
	Skew   *obs.StageSkew    `json:"skew,omitempty"`
}

// QueryDetail is the GET /v1/queries/{id} document: the registry record, the
// chosen plan (EXPLAIN) annotated with the predicted cost, the
// per-stage predicted-vs-measured flight records (ANALYZE), replan
// decisions, and the raw event journal.
type QueryDetail struct {
	QueryRecord
	Engine      string        `json:"engine,omitempty"`
	Plan        string        `json:"plan,omitempty"`
	PredSeconds float64       `json:"pred_seconds,omitempty"`
	Replans     int           `json:"replans"`
	Stages      []StageStatus `json:"stages,omitempty"`
	Events      []obs.Event   `json:"events,omitempty"`
}

// detail joins the registry record with the query's journal events.
func (s *Server) detail(id string) (QueryDetail, bool) {
	rec, ok := s.queries.lookup(id)
	if !ok {
		return QueryDetail{}, false
	}
	d := QueryDetail{QueryRecord: rec}
	d.Events = s.journal.Events(id)
	for i := range d.Events {
		e := &d.Events[i]
		switch e.Type {
		case obs.EvPlanned:
			d.Engine, d.Plan, d.PredSeconds = e.Engine, e.Plan, e.PredSeconds
		case obs.EvReplanned:
			d.Replans++
			d.Plan = e.Plan
		case obs.EvStageEnd:
			d.Stages = append(d.Stages, StageStatus{
				Stage: e.Stage, Op: e.Op, Flight: e.Flight, Skew: e.Skew,
			})
		}
	}
	return d, true
}

// handleQueries serves GET /v1/queries and GET /v1/queries/{id}.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/queries")
	rest = strings.Trim(rest, "/")
	if rest == "" {
		live, recent := s.queries.list()
		writeJSON(w, http.StatusOK, QueryList{Live: live, Recent: recent})
		return
	}
	d, ok := s.detail(rest)
	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: fmt.Sprintf("serve: unknown query %q", rest)})
		return
	}
	writeJSON(w, http.StatusOK, d)
}
