package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fuseme"
	"fuseme/internal/obs"
)

// InputSpec declares one query input. Exactly one of Dataset, Values or
// Random must be set.
type InputSpec struct {
	// Dataset references a server-side named dataset (RegisterDataset /
	// fuseme-serve -dataset).
	Dataset string `json:"dataset,omitempty"`
	// Rows/Cols size an inline input (with Values or Random).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Values is an inline dense matrix, row-major, Rows x Cols values.
	Values []float64 `json:"values,omitempty"`
	// Random generates the input server-side (deterministic per seed).
	Random *RandomSpec `json:"random,omitempty"`
}

// RandomSpec generates a random input server-side.
type RandomSpec struct {
	Kind    string  `json:"kind"` // "dense" or "sparse"
	Density float64 `json:"density,omitempty"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Seed    int64   `json:"seed"`
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Script is the DML-like query text (see docs/LANGUAGE.md).
	Script string `json:"script"`
	// Inputs binds the script's input names.
	Inputs map[string]InputSpec `json:"inputs,omitempty"`
	// MemBytes declares the submission's memory demand for admission
	// control; zero lets the server estimate max(floor, 2 x input bytes).
	MemBytes int64 `json:"mem_bytes,omitempty"`
	// OmitValues suppresses output matrix values in the response (shapes
	// and stats only).
	OmitValues bool `json:"omit_values,omitempty"`
}

// OutputMatrix is one named query result.
type OutputMatrix struct {
	Rows   int       `json:"rows"`
	Cols   int       `json:"cols"`
	NNZ    int       `json:"nnz"`
	Values []float64 `json:"values,omitempty"` // row-major, unless omit_values
}

// QueryResponse is the POST /v1/query success body.
type QueryResponse struct {
	Tenant       string                  `json:"tenant"`
	Outputs      map[string]OutputMatrix `json:"outputs"`
	Stats        fuseme.Stats            `json:"stats"`
	PlanCacheHit bool                    `json:"plan_cache_hit"`
	QueueMillis  float64                 `json:"queue_ms"`
	ExecMillis   float64                 `json:"exec_ms"`
}

// demand estimates the submission's memory demand for admission control.
func (s *Server) demand(req *QueryRequest, inputs map[string]*fuseme.Matrix) int64 {
	if req.MemBytes > 0 {
		return req.MemBytes
	}
	var in int64
	for _, m := range inputs {
		in += m.SizeBytes()
	}
	d := 2 * in
	if d < s.cfg.DefaultMemBytes {
		d = s.cfg.DefaultMemBytes
	}
	return d
}

// materializeInputs resolves every input spec into a matrix.
func (s *Server) materializeInputs(req *QueryRequest) (map[string]*fuseme.Matrix, error) {
	out := make(map[string]*fuseme.Matrix, len(req.Inputs))
	bs := s.cfg.Cluster.BlockSize
	for name, spec := range req.Inputs {
		switch {
		case spec.Dataset != "":
			m, ok := s.dataset(spec.Dataset)
			if !ok {
				return nil, fmt.Errorf("input %q: unknown dataset %q", name, spec.Dataset)
			}
			out[name] = m
		case spec.Values != nil:
			m, err := fuseme.NewDenseMatrix(spec.Rows, spec.Cols, bs, spec.Values)
			if err != nil {
				return nil, fmt.Errorf("input %q: %w", name, err)
			}
			out[name] = m
		case spec.Random != nil:
			if spec.Rows < 1 || spec.Cols < 1 {
				return nil, fmt.Errorf("input %q: random input needs rows and cols", name)
			}
			switch spec.Random.Kind {
			case "dense", "":
				out[name] = fuseme.NewRandomDenseMatrix(spec.Rows, spec.Cols, bs,
					spec.Random.Lo, spec.Random.Hi, spec.Random.Seed)
			case "sparse":
				out[name] = fuseme.NewRandomSparseMatrix(spec.Rows, spec.Cols, bs,
					spec.Random.Density, spec.Random.Lo, spec.Random.Hi, spec.Random.Seed)
			default:
				return nil, fmt.Errorf("input %q: unknown random kind %q", name, spec.Random.Kind)
			}
		default:
			return nil, fmt.Errorf("input %q: one of dataset, values or random is required", name)
		}
	}
	return out, nil
}

// handleQuery is POST /v1/query: authenticate, admit, execute on a pooled
// session, respond.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	tenant, err := s.authenticate(r)
	if err != nil {
		writeJSON(w, http.StatusUnauthorized, httpError{Error: err.Error()})
		return
	}
	// Atomically check the drain flag and count the submission as in
	// flight: Shutdown waits for every admitted submission.
	if !s.beginRequest() {
		writeRetryable(w, http.StatusServiceUnavailable, "serve: draining, not accepting new submissions")
		return
	}
	defer s.endRequest()

	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "decoding request: " + err.Error()})
		return
	}
	if req.Script == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "empty script"})
		return
	}
	inputs, err := s.materializeInputs(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}

	// Register the query and open its event log: every lifecycle step from
	// here on lands in the journal under one query id, queryable from
	// GET /v1/queries/{id} while the query runs and after it finishes.
	demand := s.demand(&req, inputs)
	rec := s.queries.begin(tenant.Name, req.Script, demand)
	qlog := s.journal.Begin(rec.ID, tenant.Name)
	qlog.Emit(obs.Event{Type: obs.EvReceived})

	// Admission: reserve the submission's memory demand out of the tenant's
	// carve-out, queueing bounded-FIFO when exhausted.
	if used, depth := s.adm.Usage(tenant.Name); used+demand > tenant.QuotaBytes || depth > 0 {
		qlog.Emit(obs.Event{Type: obs.EvQueued, Cause: "memory"})
	}
	queueStart := time.Now()
	release, err := s.adm.Acquire(tenant.Name, demand, s.cfg.QueueDepth, s.cfg.QueueWait)
	s.reg.Gauge(obs.TenantSeries(obs.MTenantQueueDepth, tenant.Name)).Set(func() float64 {
		_, q := s.adm.Usage(tenant.Name)
		return float64(q)
	}())
	if err != nil {
		s.reg.Counter(obs.TenantSeries(obs.MTenantRejects, tenant.Name)).Inc()
		c := s.counters(tenant.Name)
		s.tmu.Lock()
		c.rejects++
		s.tmu.Unlock()
		qlog.Emit(obs.Event{Type: obs.EvFailed, Cause: "admission", Error: err.Error()})
		s.queries.finish(rec, "rejected", func(r *QueryRecord) { r.Error = err.Error() })
		code := http.StatusTooManyRequests
		if errors.Is(err, ErrTooLarge) {
			code = http.StatusRequestEntityTooLarge
			writeJSON(w, code, httpError{Error: err.Error()})
			return
		}
		writeRetryable(w, code, err.Error())
		return
	}
	defer release()
	queued := time.Since(queueStart)
	qlog.Emit(obs.Event{Type: obs.EvAdmitted, Seconds: queued.Seconds()})
	s.reg.Histogram(obs.TenantSeries(obs.MTenantQueueSeconds, tenant.Name)).Observe(queued.Seconds())
	s.queries.update(rec, func(r *QueryRecord) {
		r.State = "running"
		r.QueueMillis = float64(queued.Nanoseconds()) / 1e6
	})

	sess, err := s.acquireSession()
	if err != nil {
		s.queries.finish(rec, "failed", func(r *QueryRecord) { r.Error = err.Error() })
		writeJSON(w, http.StatusInternalServerError, httpError{Error: err.Error()})
		return
	}
	defer s.releaseSession(sess)

	sess.SetTenant(tenant.Name, tenant.Weight)
	sess.SetQueryLog(qlog)
	for name, m := range inputs {
		sess.Bind(name, m)
	}
	defer func() {
		for name := range inputs {
			sess.Unbind(name)
		}
	}()

	s.reg.Gauge(obs.MServeActive).Set(float64(s.active.Add(1)))
	execStart := time.Now()
	out, err := sess.Query(req.Script)
	execDur := time.Since(execStart)
	s.reg.Gauge(obs.MServeActive).Set(float64(s.active.Add(-1)))
	s.reg.Counter(obs.MServeQueries).Inc()
	s.reg.Histogram(obs.MServeQuerySeconds).Observe(execDur.Seconds())
	s.reg.Histogram(obs.TenantSeries(obs.MTenantQuerySeconds, tenant.Name)).Observe(queued.Seconds() + execDur.Seconds())
	s.reg.Counter(obs.TenantSeries(obs.MTenantQueries, tenant.Name)).Inc()

	c := s.counters(tenant.Name)
	if err != nil {
		s.reg.Counter(obs.TenantSeries(obs.MTenantErrors, tenant.Name)).Inc()
		s.tmu.Lock()
		c.queries++
		c.errors++
		s.tmu.Unlock()
		s.queries.finish(rec, "failed", func(r *QueryRecord) {
			r.ExecMillis = float64(execDur.Nanoseconds()) / 1e6
			r.Error = err.Error()
		})
		code := http.StatusUnprocessableEntity
		if errors.Is(err, fuseme.ErrOutOfMemory) || errors.Is(err, fuseme.ErrTimeout) {
			code = http.StatusInsufficientStorage
		}
		writeJSON(w, code, httpError{Error: err.Error()})
		return
	}

	stats := sess.LastStats()
	hit := sess.LastPlanCacheHit()
	s.queries.finish(rec, "done", func(r *QueryRecord) {
		r.ExecMillis = float64(execDur.Nanoseconds()) / 1e6
		r.PlanCacheHit = hit
	})
	s.reg.Counter(obs.TenantSeries(obs.MTenantTasks, tenant.Name)).Add(int64(stats.Tasks))
	s.reg.Counter(obs.TenantSeries(obs.MTenantBytes, tenant.Name)).Add(stats.TotalCommBytes() + stats.ExtraWireBytes)
	if hit {
		s.reg.Counter(obs.TenantSeries(obs.MTenantPlanHits, tenant.Name)).Inc()
	}
	s.tmu.Lock()
	c.queries++
	c.tasks += int64(stats.Tasks)
	c.bytes += stats.TotalCommBytes() + stats.ExtraWireBytes
	if hit {
		c.planHits++
	}
	s.tmu.Unlock()

	resp := QueryResponse{
		Tenant:       tenant.Name,
		Outputs:      make(map[string]OutputMatrix, len(out)),
		Stats:        stats,
		PlanCacheHit: hit,
		QueueMillis:  float64(queued.Nanoseconds()) / 1e6,
		ExecMillis:   float64(execDur.Nanoseconds()) / 1e6,
	}
	for name, m := range out {
		rows, cols := m.Dims()
		om := OutputMatrix{Rows: rows, Cols: cols, NNZ: m.NNZ()}
		if !req.OmitValues {
			om.Values = m.Dense()
		}
		resp.Outputs[name] = om
	}
	writeJSON(w, http.StatusOK, resp)
}
