package serve

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"fuseme"
)

// ParseTenants parses the daemon's tenant table: a comma-separated list of
// name:token:weight[:quotaMB] entries, e.g.
//
//	acme:s3cret:2:4096,beta:hunter2:1
//
// Token may be empty (open tenant), weight defaults to 1, and quota defaults
// to the tenant's weighted share of the budget. An empty string returns nil
// (open single-tenant mode).
func ParseTenants(spec string) ([]Tenant, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Tenant
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("serve: tenant %q: want name:token[:weight[:quotaMB]]", entry)
		}
		t := Tenant{Name: parts[0], Token: parts[1], Weight: 1}
		if t.Name == "" {
			return nil, fmt.Errorf("serve: tenant %q: empty name", entry)
		}
		if len(parts) >= 3 && parts[2] != "" {
			w, err := strconv.Atoi(parts[2])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("serve: tenant %q: weight %q: want a positive integer", entry, parts[2])
			}
			t.Weight = w
		}
		if len(parts) == 4 && parts[3] != "" {
			mb, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil || mb < 1 {
				return nil, fmt.Errorf("serve: tenant %q: quota %q: want positive MiB", entry, parts[3])
			}
			t.QuotaBytes = mb << 20
		}
		out = append(out, t)
	}
	return out, nil
}

// ParseDataset parses one -dataset flag value and materializes the matrix at
// the given block size. Accepted forms:
//
//	name=dense:ROWSxCOLS:lo:hi:seed
//	name=sparse:ROWSxCOLS:density:lo:hi:seed
//	name=file:PATH            (fuseme binary format, see Matrix.Write)
func ParseDataset(spec string, blockSize int) (name string, m *fuseme.Matrix, err error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return "", nil, fmt.Errorf("serve: dataset %q: want name=kind:...", spec)
	}
	kind, args, _ := strings.Cut(rest, ":")
	switch kind {
	case "dense":
		p := strings.Split(args, ":")
		if len(p) != 4 {
			return "", nil, fmt.Errorf("serve: dataset %q: want dense:ROWSxCOLS:lo:hi:seed", spec)
		}
		rows, cols, err := parseDims(p[0])
		if err != nil {
			return "", nil, fmt.Errorf("serve: dataset %q: %w", spec, err)
		}
		lo, hi, seed, err := parseRange(p[1], p[2], p[3])
		if err != nil {
			return "", nil, fmt.Errorf("serve: dataset %q: %w", spec, err)
		}
		return name, fuseme.NewRandomDenseMatrix(rows, cols, blockSize, lo, hi, seed), nil
	case "sparse":
		p := strings.Split(args, ":")
		if len(p) != 5 {
			return "", nil, fmt.Errorf("serve: dataset %q: want sparse:ROWSxCOLS:density:lo:hi:seed", spec)
		}
		rows, cols, err := parseDims(p[0])
		if err != nil {
			return "", nil, fmt.Errorf("serve: dataset %q: %w", spec, err)
		}
		density, err := strconv.ParseFloat(p[1], 64)
		if err != nil || density <= 0 || density > 1 {
			return "", nil, fmt.Errorf("serve: dataset %q: density %q: want (0,1]", spec, p[1])
		}
		lo, hi, seed, err := parseRange(p[2], p[3], p[4])
		if err != nil {
			return "", nil, fmt.Errorf("serve: dataset %q: %w", spec, err)
		}
		return name, fuseme.NewRandomSparseMatrix(rows, cols, blockSize, density, lo, hi, seed), nil
	case "file":
		f, err := os.Open(args)
		if err != nil {
			return "", nil, fmt.Errorf("serve: dataset %q: %w", spec, err)
		}
		defer f.Close()
		m, err := fuseme.ReadMatrixFrom(f, blockSize)
		if err != nil {
			return "", nil, fmt.Errorf("serve: dataset %q: %w", spec, err)
		}
		return name, m, nil
	}
	return "", nil, fmt.Errorf("serve: dataset %q: unknown kind %q (want dense, sparse or file)", spec, kind)
}

func parseDims(s string) (rows, cols int, err error) {
	r, c, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("dims %q: want ROWSxCOLS", s)
	}
	rows, err = strconv.Atoi(r)
	if err == nil {
		cols, err = strconv.Atoi(c)
	}
	if err != nil || rows < 1 || cols < 1 {
		return 0, 0, fmt.Errorf("dims %q: want positive ROWSxCOLS", s)
	}
	return rows, cols, nil
}

func parseRange(loS, hiS, seedS string) (lo, hi float64, seed int64, err error) {
	lo, err = strconv.ParseFloat(loS, 64)
	if err == nil {
		hi, err = strconv.ParseFloat(hiS, 64)
	}
	if err == nil {
		seed, err = strconv.ParseInt(seedS, 10, 64)
	}
	if err != nil {
		return 0, 0, 0, fmt.Errorf("range %q:%q:%q: want lo:hi:seed numbers", loS, hiS, seedS)
	}
	return lo, hi, seed, nil
}
