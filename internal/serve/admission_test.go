package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestAdmission(limit int64) *admission {
	return newAdmission(map[string]int64{"t": limit})
}

// waitQueued polls until the tenant's live queue reaches depth n.
func waitQueued(t *testing.T, a *admission, tenant string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, q := a.Usage(tenant); q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionGrantAndRelease(t *testing.T) {
	a := newTestAdmission(100)
	rel, err := a.Acquire("t", 60, 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if used, _ := a.Usage("t"); used != 60 {
		t.Fatalf("used = %d, want 60", used)
	}
	rel2, err := a.Acquire("t", 40, 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel2()
	if used, q := a.Usage("t"); used != 0 || q != 0 {
		t.Fatalf("after release: used=%d queued=%d", used, q)
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := newTestAdmission(100)
	rel, err := a.Acquire("t", 60, 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must not double-release
	if used, _ := a.Usage("t"); used != 0 {
		t.Fatalf("used = %d after double release, want 0", used)
	}
}

func TestAdmissionTooLarge(t *testing.T) {
	a := newTestAdmission(100)
	if _, err := a.Acquire("t", 101, 4, time.Second); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestAdmissionUnknownTenant(t *testing.T) {
	a := newTestAdmission(100)
	if _, err := a.Acquire("nobody", 1, 4, time.Second); err == nil {
		t.Fatal("unknown tenant admitted")
	}
}

func TestAdmissionNegativeDemand(t *testing.T) {
	a := newTestAdmission(100)
	if _, err := a.Acquire("t", -1, 4, time.Second); err == nil {
		t.Fatal("negative demand admitted")
	}
}

// TestAdmissionFIFO holds the whole reservation, queues two waiters plus a
// small latecomer that would fit immediately, and checks grants drain in
// FIFO order (the latecomer must not jump the queue).
func TestAdmissionFIFO(t *testing.T) {
	a := newTestAdmission(100)
	hold, err := a.Acquire("t", 100, 8, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 3)
	var wg sync.WaitGroup
	enqueue := func(name string, demand int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire("t", demand, 8, 5*time.Second)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			order <- name
			time.Sleep(5 * time.Millisecond)
			rel()
		}()
	}
	// Demands chosen so no two fit together: each release grants exactly
	// one waiter, making the FIFO order observable without races.
	enqueue("big", 80)
	waitQueued(t, a, "t", 1)
	enqueue("mid", 60)
	waitQueued(t, a, "t", 2)
	enqueue("small", 50)
	waitQueued(t, a, "t", 3)

	hold()
	wg.Wait()
	close(order)
	var got []string
	for name := range order {
		got = append(got, name)
	}
	want := []string{"big", "mid", "small"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newTestAdmission(100)
	hold, err := a.Acquire("t", 100, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rel, err := a.Acquire("t", 10, 2, 5*time.Second); err == nil {
				rel()
			}
		}()
	}
	waitQueued(t, a, "t", 2)
	if _, err := a.Acquire("t", 10, 2, time.Second); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	hold()
	wg.Wait()
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newTestAdmission(100)
	hold, err := a.Acquire("t", 100, 4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	start := time.Now()
	if _, err := a.Acquire("t", 10, 4, 20*time.Millisecond); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far longer than maxWait")
	}
	// The abandoned waiter must not absorb a later grant.
	hold()
	rel, err := a.Acquire("t", 100, 4, time.Second)
	if err != nil {
		t.Fatalf("acquire after timed-out waiter: %v", err)
	}
	rel()
}

// TestAdmissionNeverOvercommits hammers one reservation from many
// goroutines and checks the in-flight sum never exceeds the limit.
func TestAdmissionNeverOvercommits(t *testing.T) {
	const limit = 1000
	a := newTestAdmission(limit)
	var inflight atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				demand := int64(100 + (seed*31+int64(i)*97)%300)
				rel, err := a.Acquire("t", demand, 64, 10*time.Second)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if now := inflight.Add(demand); now > limit {
					t.Errorf("overcommit: %d in flight > limit %d", now, limit)
				}
				inflight.Add(-demand)
				rel()
			}
		}(int64(g))
	}
	wg.Wait()
	if used, q := a.Usage("t"); used != 0 || q != 0 {
		t.Fatalf("final used=%d queued=%d, want 0,0", used, q)
	}
}
