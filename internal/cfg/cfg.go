// Package cfg implements the Cuboid-based Fusion plan Generator (Section 4):
// the exploration phase (Algorithm 2) grows candidate partial fusion plans
// around every matrix multiplication, fusing across termination operators
// only at the top; the exploitation phase (Algorithm 3) splits a candidate
// at secondary multiplications whenever two smaller plans are cheaper than
// one under the CFO cost model.
//
// Unlike GEN (the SystemDS generator reproduced in the baselines package),
// CFG happily keeps large-scale matrix multiplications inside fusion plans,
// because the CFO's (P,Q,R) knob bounds per-task memory.
package cfg

import (
	"fmt"
	"sort"
	"sync/atomic"

	"fuseme/internal/cost"
	"fuseme/internal/dag"
	"fuseme/internal/fusion"
	"fuseme/internal/opt"
)

// generateCalls counts Generate invocations process-wide. The plan cache's
// end-to-end tests read it to prove repeat queries skip CFG exploration.
var generateCalls atomic.Int64

// GenerateCalls returns how many times Generate has run in this process.
func GenerateCalls() int64 { return generateCalls.Load() }

// Result carries the generated plan set plus the chosen parameters for each
// matmul-bearing plan.
type Result struct {
	Set    fusion.Set
	Params map[*fusion.Plan]opt.Result // only for plans with a main matmul
}

// Generate runs both CFG phases over g and then covers the remaining
// operators with Cell-fused chains and singletons, so the returned set
// partitions the whole query.
func Generate(g *dag.Graph, model cost.Model, blockSize int) (*Result, error) {
	generateCalls.Add(1)
	rule := fusion.RuleFor(g, model.TaskMemBytes)
	candidates := ExplorationPhase(g, rule)
	final, params := ExploitationPhase(candidates, model, blockSize)

	used := map[int]bool{}
	for _, p := range final {
		for id := range p.Members {
			used[id] = true
		}
	}
	res := &Result{Params: params}
	res.Set.Plans = final
	res.Set.Plans = append(res.Set.Plans, fusion.CellFuse(g, used, rule)...)
	res.Set.Plans = append(res.Set.Plans, fusion.Singletons(g, used)...)
	res.Set.Sort()
	if err := res.Set.Validate(g); err != nil {
		return nil, fmt.Errorf("cfg: generated plan set invalid: %w", err)
	}
	return res, nil
}

// ExplorationPhase is Algorithm 2: starting from each matrix multiplication,
// grow a candidate plan through adjacent non-termination operators; a
// termination operator may join only as the plan's top. Aggregations always
// cap a plan (the executor evaluates them as plan roots).
func ExplorationPhase(g *dag.Graph, rule fusion.TermRule) []*fusion.Plan {
	reach := g.ReachableFromOutputs()
	inWorkload := map[int]bool{}
	var matmuls []*dag.Node
	for _, n := range g.Nodes() {
		if n.IsLeaf() || !reach[n.ID] {
			continue
		}
		inWorkload[n.ID] = true
		if n.Op == dag.OpMatMul {
			matmuls = append(matmuls, n)
		}
	}

	var plans []*fusion.Plan
	for _, vm := range matmuls {
		if !inWorkload[vm.ID] {
			continue // already absorbed into an earlier plan
		}
		members := map[int]*dag.Node{vm.ID: vm}
		inWorkload[vm.ID] = false
		top := false
		rejected := map[int]bool{}

		for {
			adj := adjacent(members, top, inWorkload, rejected)
			if len(adj) == 0 {
				break
			}
			for _, vi := range adj {
				outgoing := isOutgoing(vi, members)
				capsPlan := rule.IsTermination(vi) || vi.Op == dag.OpUnaryAgg
				switch {
				case !capsPlan && vi.Op != dag.OpUnaryAgg:
					members[vi.ID] = vi
					inWorkload[vi.ID] = false
				case outgoing && !top && hasSingleRootCandidate(members, vi):
					// A termination operator (or aggregation) joins as top.
					members[vi.ID] = vi
					inWorkload[vi.ID] = false
					top = true
				default:
					rejected[vi.ID] = true
				}
			}
		}
		root := rootOf(members)
		p, err := fusion.NewPlan(root, members)
		if err != nil {
			// A growth step violated an invariant; fall back to the bare
			// multiplication (always valid).
			for id := range members {
				if id != vm.ID {
					inWorkload[id] = true
				}
			}
			p, err = fusion.NewPlan(vm, map[int]*dag.Node{vm.ID: vm})
			if err != nil {
				continue
			}
		}
		plans = append(plans, p)
	}
	return plans
}

// adjacent returns the operators adjacent to the member set: consumers of
// members (outgoing) unless top is already fixed, plus operator inputs of
// members (incoming); leaves, used and rejected nodes are excluded. The
// order is deterministic (ascending ID).
func adjacent(members map[int]*dag.Node, top bool, inWorkload, rejected map[int]bool) []*dag.Node {
	seen := map[int]*dag.Node{}
	for _, n := range members {
		if !top {
			for _, c := range n.Consumers() {
				if inWorkload[c.ID] && !rejected[c.ID] && members[c.ID] == nil {
					seen[c.ID] = c
				}
			}
		}
		for _, in := range n.Inputs {
			if in.IsLeaf() {
				continue
			}
			if inWorkload[in.ID] && !rejected[in.ID] && members[in.ID] == nil {
				seen[in.ID] = in
			}
		}
	}
	out := make([]*dag.Node, 0, len(seen))
	for _, n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// isOutgoing reports whether vi consumes a member (parent direction).
func isOutgoing(vi *dag.Node, members map[int]*dag.Node) bool {
	for _, in := range vi.Inputs {
		if members[in.ID] != nil {
			return true
		}
	}
	return false
}

// hasSingleRootCandidate checks that adding vi as top keeps the plan a tree:
// vi must consume the current unique root.
func hasSingleRootCandidate(members map[int]*dag.Node, vi *dag.Node) bool {
	root := rootOf(members)
	if root == nil {
		return false
	}
	for _, in := range vi.Inputs {
		if in == root {
			return true
		}
	}
	return false
}

// rootOf returns the unique member without an in-set consumer, or nil.
func rootOf(members map[int]*dag.Node) *dag.Node {
	var root *dag.Node
	for _, n := range members {
		consumed := false
		for _, c := range n.Consumers() {
			if members[c.ID] != nil {
				consumed = true
				break
			}
		}
		if consumed {
			continue
		}
		if root != nil {
			return nil // two roots: not a tree rooted at one operator
		}
		root = n
	}
	return root
}

// ExploitationPhase is Algorithm 3: for each candidate with secondary
// multiplications, try splitting the most distant multiplication (by hops
// from the main one) out into its own plan; keep the split when the summed
// optimal costs improve. Returns the final plans and the optimal parameters
// for every matmul-bearing plan.
func ExploitationPhase(candidates []*fusion.Plan, model cost.Model, blockSize int) ([]*fusion.Plan, map[*fusion.Plan]opt.Result) {
	params := map[*fusion.Plan]opt.Result{}
	var final []*fusion.Plan
	queue := append([]*fusion.Plan(nil), candidates...)
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if f.MainMM == nil {
			final = append(final, f)
			continue
		}
		best := opt.Optimize(model, cost.Analyze(f, blockSize))
		splitPoints := secondaryMatMuls(f)
		for _, vi := range splitPoints {
			if f.Members[vi.ID] == nil {
				continue // already split away
			}
			fm, fi, err := split(f, vi)
			if err != nil {
				continue
			}
			rm := opt.Optimize(model, cost.Analyze(fm, blockSize))
			ri := opt.Optimize(model, cost.Analyze(fi, blockSize))
			if rm.Cost+ri.Cost < best.Cost {
				queue = append(queue, fi) // fi may itself split further
				f, best = fm, rm
			}
		}
		params[f] = best
		final = append(final, f)
	}
	return final, params
}

// secondaryMatMuls returns the plan's multiplications except the main one,
// sorted by descending hop distance from the main multiplication — the
// paper's heuristic: the most distant multiplication is replicated the most
// and so is split first.
func secondaryMatMuls(f *fusion.Plan) []*dag.Node {
	var out []*dag.Node
	dist := hopDistances(f)
	for _, mm := range f.MatMuls() {
		if mm != f.MainMM {
			out = append(out, mm)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if dist[out[i].ID] != dist[out[j].ID] {
			return dist[out[i].ID] > dist[out[j].ID]
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// hopDistances computes undirected hop counts from the main multiplication
// within the member tree.
func hopDistances(f *fusion.Plan) map[int]int {
	dist := map[int]int{f.MainMM.ID: 0}
	frontier := []*dag.Node{f.MainMM}
	for len(frontier) > 0 {
		var next []*dag.Node
		for _, n := range frontier {
			d := dist[n.ID]
			var neigh []*dag.Node
			neigh = append(neigh, n.Inputs...)
			neigh = append(neigh, n.Consumers()...)
			for _, m := range neigh {
				if f.Members[m.ID] == nil {
					continue
				}
				if _, seen := dist[m.ID]; seen {
					continue
				}
				dist[m.ID] = d + 1
				next = append(next, m)
			}
		}
		frontier = next
	}
	return dist
}

// split divides f at vi: fi is the member subtree rooted at vi, fm the rest
// (vi's output becomes a materialised input of fm).
func split(f *fusion.Plan, vi *dag.Node) (fm, fi *fusion.Plan, err error) {
	sub := map[int]*dag.Node{}
	var collect func(n *dag.Node)
	collect = func(n *dag.Node) {
		if f.Members[n.ID] == nil || sub[n.ID] != nil {
			return
		}
		sub[n.ID] = n
		for _, in := range n.Inputs {
			collect(in)
		}
	}
	collect(vi)
	rest := map[int]*dag.Node{}
	for id, n := range f.Members {
		if sub[id] == nil {
			rest[id] = n
		}
	}
	if len(rest) == 0 {
		return nil, nil, fmt.Errorf("cfg: splitting %d would empty the plan", vi.ID)
	}
	fi, err = fusion.NewPlan(vi, sub)
	if err != nil {
		return nil, nil, err
	}
	fm, err = fusion.NewPlan(f.Root, rest)
	if err != nil {
		return nil, nil, err
	}
	return fm, fi, nil
}
