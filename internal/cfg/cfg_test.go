package cfg

import (
	"testing"

	"fuseme/internal/cost"
	"fuseme/internal/dag"
	"fuseme/internal/fusion"
	"fuseme/internal/lang"
)

// Local graph builders (the workloads package cannot be imported here: it
// depends on the engine layer, which depends on this package).

func mustParse(t testing.TB, src string, inputs map[string]lang.InputDecl) *dag.Graph {
	t.Helper()
	g, err := lang.Parse(src, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func gnmfGraph(t testing.TB, users, items, k int, density float64) *dag.Graph {
	return mustParse(t, `
U2 = U * (t(V) %*% X) / (t(V) %*% V %*% U)
V2 = V * (X %*% t(U)) / (V %*% (U %*% t(U)))
`, map[string]lang.InputDecl{
		"X": {Rows: users, Cols: items, Sparsity: density},
		"U": {Rows: k, Cols: items, Sparsity: 1},
		"V": {Rows: users, Cols: k, Sparsity: 1},
	})
}

func nmfGraph(t testing.TB, rows, cols, k int, density float64) *dag.Graph {
	return mustParse(t, "O = X * log(U %*% t(V) + 1e-3)", map[string]lang.InputDecl{
		"X": {Rows: rows, Cols: cols, Sparsity: density},
		"U": {Rows: rows, Cols: k, Sparsity: 1},
		"V": {Rows: cols, Cols: k, Sparsity: 1},
	})
}

func paperModel() cost.Model {
	return cost.Model{Nodes: 8, NetBW: 125e6, CompBW: 546e9, TaskMemBytes: 10 << 30, MinTasks: 96}
}

// gnmfStructure finds, per output, the generated plan sizes for the GNMF
// graph (Figure 10).
func TestExplorationPhaseGNMF(t *testing.T) {
	// YahooMusic-scale GNMF with k=200.
	g := gnmfGraph(t, 1_823_179, 136_736, 200, 0.0029)
	rule := fusion.RuleFor(g, 10<<30)
	candidates := ExplorationPhase(g, rule)
	// Two candidate mm-plans, one per factor update (the transposes are
	// materialisation points and stay outside, exactly as in Figure 10(a)).
	if len(candidates) != 2 {
		for _, p := range candidates {
			t.Logf("candidate: %v", p)
		}
		t.Fatalf("%d candidates, want 2", len(candidates))
	}
	for _, p := range candidates {
		// Each candidate holds the three multiplications and two
		// element-wise operators of one update: {v1..v5} of Figure 10(a).
		if got := len(p.MatMuls()); got != 3 {
			t.Errorf("candidate %v has %d matmuls, want 3", p, got)
		}
		if p.Size() != 5 {
			t.Errorf("candidate %v has %d members, want 5", p, p.Size())
		}
		if p.Root.NumConsumers() != 0 {
			t.Errorf("candidate root %s is not a query root", p.Root.Label())
		}
	}
}

func TestExploitationPhaseSplitsDistantMM(t *testing.T) {
	// At YahooMusic scale the doubly nested t(V) x V chain replicates enough
	// that splitting it out wins (Figure 10(b): F1 -> F'1 + v2).
	g := gnmfGraph(t, 1_823_179, 136_736, 200, 0.0029)
	rule := fusion.RuleFor(g, 10<<30)
	candidates := ExplorationPhase(g, rule)
	final, params := ExploitationPhase(candidates, paperModel(), 1000)
	if len(final) <= len(candidates) {
		t.Fatalf("exploitation did not split: %d plans from %d candidates", len(final), len(candidates))
	}
	// Every mm-plan received feasible parameters.
	for _, p := range final {
		if p.MainMM == nil {
			continue
		}
		res, ok := params[p]
		if !ok {
			t.Errorf("plan %v has no parameters", p)
			continue
		}
		if !res.Feasible {
			t.Errorf("plan %v infeasible after exploitation", p)
		}
	}
	// The split-off plans are rooted at multiplications (the k x k chains).
	var splitRoots int
	for _, p := range final {
		if p.Root.Op == dag.OpMatMul {
			splitRoots++
		}
	}
	if splitRoots == 0 {
		t.Fatal("no split plan rooted at a multiplication")
	}
}

func TestGenerateCoversWholeGraph(t *testing.T) {
	graphs := map[string]*dag.Graph{
		"gnmf": gnmfGraph(t, 100_000, 50_000, 200, 0.001),
		"nmf":  nmfGraph(t, 100_000, 100_000, 2000, 0.001),
		"als": mustParse(t, "loss = sum((X != 0) * (X - U %*% V)^2)", map[string]lang.InputDecl{
			"X": {Rows: 100_000, Cols: 100_000, Sparsity: 0.001},
			"U": {Rows: 100_000, Cols: 100, Sparsity: 1},
			"V": {Rows: 100, Cols: 100_000, Sparsity: 1},
		}),
		"pca": mustParse(t, "O = t(X %*% S) %*% X", map[string]lang.InputDecl{
			"X": {Rows: 100_000, Cols: 1000, Sparsity: 1},
			"S": {Rows: 1000, Cols: 10, Sparsity: 1},
		}),
		"outer": mustParse(t, "O = (U %*% V) * X", map[string]lang.InputDecl{
			"X": {Rows: 100_000, Cols: 100_000, Sparsity: 0.001},
			"U": {Rows: 100_000, Cols: 100, Sparsity: 1},
			"V": {Rows: 100, Cols: 100_000, Sparsity: 1},
		}),
		"multiagg": mustParse(t, "s1 = sum(U * X); s2 = sum(X * V)", map[string]lang.InputDecl{
			"X": {Rows: 10_000, Cols: 10_000, Sparsity: 0.01},
			"U": {Rows: 10_000, Cols: 10_000, Sparsity: 1},
			"V": {Rows: 10_000, Cols: 10_000, Sparsity: 1},
		}),
	}
	for name, g := range graphs {
		res, err := Generate(g, paperModel(), 1000)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := res.Set.Validate(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGenerateNMFSinglePlan(t *testing.T) {
	// The NMF kernel fuses into exactly one CFO ("the entire query is
	// executed as a single fused operator", Section 6.2).
	g := nmfGraph(t, 100_000, 100_000, 2000, 0.001)
	res, err := Generate(g, paperModel(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Plans) != 1 {
		for _, p := range res.Set.Plans {
			t.Logf("plan: %v", p)
		}
		t.Fatalf("%d plans, want 1", len(res.Set.Plans))
	}
	p := res.Set.Plans[0]
	if p.Classify() != fusion.Outer {
		t.Fatalf("classified %v, want Outer", p.Classify())
	}
	if !res.Params[p].Feasible {
		t.Fatal("single plan infeasible")
	}
}

func TestCFGFusesLargeMatMulUnlikeGEN(t *testing.T) {
	// The headline difference (Figure 1(c)): for (X x t(V) * U) / (t(V) x V
	// x U)-style queries CFG keeps the large multiplication inside the
	// fusion plan.
	g := gnmfGraph(t, 1_823_179, 136_736, 1000, 0.0029)
	res, err := Generate(g, paperModel(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	foundLargeFused := false
	for _, p := range res.Set.Plans {
		if p.MainMM != nil && p.Size() > 1 {
			vox := int64(p.MainMM.Rows) * int64(p.MainMM.Cols) * int64(p.MainMM.Inputs[0].Cols)
			if vox > 1e12 {
				foundLargeFused = true
			}
		}
	}
	if !foundLargeFused {
		t.Fatal("CFG fused no large matmul")
	}
}

func TestSplitPreservesSemantics(t *testing.T) {
	// split() must partition members and leave both plans valid.
	g := gnmfGraph(t, 10_000, 8_000, 200, 0.01)
	rule := fusion.RuleFor(g, 10<<30)
	for _, f := range ExplorationPhase(g, rule) {
		for _, vi := range secondaryMatMuls(f) {
			fm, fi, err := split(f, vi)
			if err != nil {
				t.Fatalf("split: %v", err)
			}
			if fm.Size()+fi.Size() != f.Size() {
				t.Fatalf("split lost members: %d + %d != %d", fm.Size(), fi.Size(), f.Size())
			}
			if fi.Root != vi {
				t.Fatal("split subtree not rooted at vi")
			}
			if err := fm.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := fi.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSecondaryMatMulsSortedByDistance(t *testing.T) {
	g := gnmfGraph(t, 1_823_179, 136_736, 200, 0.0029)
	rule := fusion.RuleFor(g, 10<<30)
	for _, f := range ExplorationPhase(g, rule) {
		sp := secondaryMatMuls(f)
		if len(sp) != 2 {
			t.Fatalf("%d secondary matmuls, want 2", len(sp))
		}
		d := hopDistances(f)
		if d[sp[0].ID] < d[sp[1].ID] {
			t.Fatal("secondary matmuls not sorted by descending distance")
		}
		// Figure 11's observation: the doubly nested k x k multiplication is
		// the most distant.
		if d[sp[0].ID] != 4 || d[sp[1].ID] != 3 {
			t.Fatalf("distances %d,%d; want 4,3", d[sp[0].ID], d[sp[1].ID])
		}
	}
}
