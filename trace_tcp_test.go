package fuseme

import (
	"bytes"
	"encoding/json"
	"testing"

	"fuseme/internal/obs"
)

// TestSessionTCPDistributedTrace runs an iterative query on a TCP session
// backed by two local workers with tracing and the flight recorder on, and
// checks the merged timeline: every worker contributes skew-corrected task
// spans (with fetch/kernel/send sub-spans) on its own labelled process track,
// and the flight recorder holds exactly one record per executed stage with
// both predicted and measured sides populated.
func TestSessionTCPDistributedTrace(t *testing.T) {
	var flight bytes.Buffer
	cfg := LocalClusterConfig()
	cfg.BlockSize = 16
	cfg.Runtime = "tcp"
	cfg.Workers = startWorkers(t, 2)
	sess, err := NewSession(cfg, WithTracing(), WithFlightWriter(&flight))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	bindTestInputs(sess)

	if _, err := sess.Query("O = X * log(U %*% t(V) + 1e-3)"); err != nil {
		t.Fatal(err)
	}
	stages := sess.LastStats().Stages

	var trace bytes.Buffer
	if err := sess.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	// One labelled process track per worker plus the coordinator's.
	procs := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.PID] = true
		}
	}
	for _, pid := range []int{obs.PIDLocal, obs.PIDWorkerBase, obs.PIDWorkerBase + 1} {
		if !procs[pid] {
			t.Errorf("no process_name metadata for pid %d (have %v)", pid, procs)
		}
	}

	// Every worker shipped whole-task spans and the executor sub-spans; after
	// skew correction all of them sit inside the recorder's timeline with
	// non-negative timestamps and durations.
	taskSpans := map[int]int{}   // pid → cat "task" spans
	subSpans := map[string]int{} // sub-span name → count (worker pids only)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("span %q has negative ts/dur: %+v", ev.Name, ev)
		}
		if ev.PID < obs.PIDWorkerBase {
			continue
		}
		switch ev.Cat {
		case "task":
			taskSpans[ev.PID]++
		case "taskop":
			subSpans[ev.Name]++
		}
	}
	for _, pid := range []int{obs.PIDWorkerBase, obs.PIDWorkerBase + 1} {
		if taskSpans[pid] == 0 {
			t.Errorf("worker pid %d contributed no task spans (got %v)", pid, taskSpans)
		}
	}
	for _, name := range []string{"fetch", "kernel", "send"} {
		if subSpans[name] == 0 {
			t.Errorf("no %q sub-spans from workers (got %v)", name, subSpans)
		}
	}

	// Flight recorder: exactly one record per executed stage, with the
	// prediction joined in for the planned operator and measurements filled.
	if err := sess.obs.Flight.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadFlightRecords(bytes.NewReader(flight.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != stages {
		t.Fatalf("flight holds %d records, runtime executed %d stages", len(recs), stages)
	}
	var predicted, measured bool
	for _, r := range recs {
		if r.Stage == "" || r.Op == "" || r.Tasks == 0 {
			t.Errorf("flight record missing identity fields: %+v", r)
		}
		if r.PredNetBytes > 0 && r.P > 0 {
			predicted = true
		}
		if r.MeasWallSeconds > 0 && r.MeasFlops > 0 {
			measured = true
		}
	}
	if !predicted {
		t.Error("no flight record carries a planner prediction")
	}
	if !measured {
		t.Error("no flight record carries measurements")
	}
}

// TestSessionFlightRecorderSim checks the sim backend writes one flight
// record per stage too, and that a file-backed recorder set up with
// WithFlightRecorder survives a Close (flush) and reads back.
func TestSessionFlightRecorderSim(t *testing.T) {
	path := t.TempDir() + "/flight.jsonl"
	cfg := LocalClusterConfig()
	cfg.BlockSize = 16
	sess, err := NewSession(cfg, WithFlightRecorder(path))
	if err != nil {
		t.Fatal(err)
	}
	bindTestInputs(sess)
	if _, err := sess.Query("l = sum((X - U %*% t(V))^2)"); err != nil {
		t.Fatal(err)
	}
	stages := sess.LastStats().Stages
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != stages {
		t.Fatalf("flight holds %d records, runtime executed %d stages", len(recs), stages)
	}
	// The offline feedback loop: the file alone rebuilds a calibration report.
	rep := obs.CalibrationFromFlight(recs).Report(obs.ClusterModel{Nodes: cfg.Nodes, NetBandwidth: cfg.NetBandwidth, CompBandwidth: cfg.CompBandwidth})
	if len(rep.Rows) == 0 {
		t.Fatal("flight file rebuilt an empty calibration report")
	}
}
