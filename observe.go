package fuseme

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"fuseme/internal/obs"
	"fuseme/internal/rt/remote"
)

// Option configures a Session at construction time.
type Option func(*Session) error

// EnvMaxTaskRetries overrides the task retry budget (non-negative integer).
const EnvMaxTaskRetries = "FUSEME_MAX_TASK_RETRIES"

// defaultMaxTaskRetries is the Spark-like retry budget applied when neither
// WithMaxTaskRetries nor FUSEME_MAX_TASK_RETRIES is set.
const defaultMaxTaskRetries = 2

// EnvCacheBytes sets the per-worker block-cache budget in bytes (see
// WithBlockCache). Zero or unset disables caching.
const EnvCacheBytes = "FUSEME_CACHE_BYTES"

// EnvKernelThreads overrides the intra-task kernel thread count (see
// WithKernelThreads). Zero means auto-size against the machine's cores.
const EnvKernelThreads = "FUSEME_KERNEL_THREADS"

// EnvPrefetchBytes overrides the per-task prefetch admission budget in
// bytes (see WithPrefetchBytes). Zero or unset means the 64 MiB default; a
// negative value disables prefetching while leaving streamed aggregation
// and work-stealing on.
const EnvPrefetchBytes = "FUSEME_PREFETCH_BYTES"

// EnvJournal names a JSONL file to sink the query event journal to (see
// WithJournalFile). Unset leaves journaling off.
const EnvJournal = "FUSEME_JOURNAL"

// WithTracing enables the span recorder: plan, stage and task spans are
// collected and can be exported with Session.WriteTrace. Without this option
// the recorder is nil and the instrumentation reduces to pointer checks.
func WithTracing() Option {
	return func(s *Session) error {
		s.obs.Trace = obs.NewRecorder()
		return nil
	}
}

// WithFlightRecorder enables the per-stage flight recorder, appending one
// JSON line per executed stage to the file at path: the planner's predicted
// network/computation/memory costs and chosen (P,Q,R) next to the stage's
// measured wall time, wire bytes and cache savings. The file is created (or
// truncated) immediately and flushed on Session.Close; read it back with
// obs.ReadFlightFile / obs.CalibrationFromFlight, or diff runs offline.
func WithFlightRecorder(path string) Option {
	return func(s *Session) error {
		fr, err := obs.OpenFlightRecorder(path)
		if err != nil {
			return err
		}
		s.obs.Flight = fr
		return nil
	}
}

// WithFlightWriter is WithFlightRecorder onto an arbitrary writer (tests,
// in-memory buffers). The writer is flushed on Session.Close but not closed.
func WithFlightWriter(w io.Writer) Option {
	return func(s *Session) error {
		s.obs.Flight = obs.NewFlightRecorder(w)
		return nil
	}
}

// WithJournal attaches an existing event journal (see NewJournal): every
// Query appends its lifecycle — planned (chosen plan + predicted cost),
// replans, stage start/end with predicted-vs-measured costs, completion — as
// structured events. Share one journal across sessions (the serve daemon
// does) to get a single queryable stream; the caller owns the journal's
// lifetime.
func WithJournal(j *obs.Journal) Option {
	return func(s *Session) error {
		if j == nil {
			return errors.New("fuseme: WithJournal(nil)")
		}
		s.journal = j
		return nil
	}
}

// WithJournalFile enables the event journal with a JSONL file sink at path
// (created or truncated immediately, flushed on Session.Close). Read it back
// with obs.ReadEvents. Environment equivalent: FUSEME_JOURNAL.
func WithJournalFile(path string) Option {
	return func(s *Session) error {
		j, err := obs.OpenJournal(path, 0)
		if err != nil {
			return err
		}
		s.journal = j
		s.journalOwned = true
		return nil
	}
}

// WithJournalWriter is WithJournalFile onto an arbitrary writer (tests,
// in-memory buffers). The writer is flushed on Session.Close but not closed.
func WithJournalWriter(w io.Writer) Option {
	return func(s *Session) error {
		s.journal = obs.NewJournalWriter(w, 0)
		s.journalOwned = true
		return nil
	}
}

// NewJournal creates a standalone event journal holding the last ring events
// in memory (non-positive selects the 4096 default), for sharing across
// sessions via WithJournal.
func NewJournal(ring int) *obs.Journal { return obs.NewJournal(ring) }

// resolveJournal falls back to the FUSEME_JOURNAL file sink when no journal
// option was given.
func (s *Session) resolveJournal() error {
	if s.journal != nil {
		return nil
	}
	if path := os.Getenv(EnvJournal); path != "" {
		j, err := obs.OpenJournal(path, 0)
		if err != nil {
			return err
		}
		s.journal = j
		s.journalOwned = true
	}
	return nil
}

// Journal returns the session's event journal, or nil when journaling is
// off.
func (s *Session) Journal() *obs.Journal { return s.journal }

// SetQueryLog routes the next Query call's lifecycle events into q instead
// of auto-numbering a log on the session's journal — the serve daemon uses
// this to interleave its admission events (received/queued/admitted) with
// the session's planning and stage events under one query id. Consumed by
// exactly one Query; like Bind, not safe concurrently with Query.
func (s *Session) SetQueryLog(q *obs.QueryLog) { s.pendingQLog = q }

// WithMetrics enables the in-process metrics registry without serving it
// over HTTP; read it with Session.MetricsSnapshot.
func WithMetrics() Option {
	return func(s *Session) error {
		if s.obs.Metrics == nil {
			s.obs.Metrics = obs.NewRegistry()
		}
		return nil
	}
}

// WithMetricsAddr enables the metrics registry and serves it over HTTP on
// addr (host:port; use ":0" for an ephemeral port): Prometheus text on
// /metrics, a JSON snapshot plus live runtime stats on /debug/stats. The
// bound address is available from Session.MetricsAddr.
func WithMetricsAddr(addr string) Option {
	return func(s *Session) error {
		if s.obs.Metrics == nil {
			s.obs.Metrics = obs.NewRegistry()
		}
		s.metricsAddr = addr
		return nil
	}
}

// WithMaxTaskRetries overrides how many times a failed task is re-attempted
// before its stage fails (default 2, or FUSEME_MAX_TASK_RETRIES).
func WithMaxTaskRetries(n int) Option {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("fuseme: MaxTaskRetries = %d, must be >= 0", n)
		}
		s.retries = n
		return nil
	}
}

// WithBlockCache enables the worker-resident block cache for loop-invariant
// inputs with a per-worker byte budget (0 disables; the effective budget is
// clamped to the per-task memory budget θt). Iterative workloads whose
// queries re-consume an unchanged input (e.g. the data matrix X in GNMF)
// skip re-shipping its blocks from the second iteration on; results are
// bit-identical with the cache on or off. Under the TCP runtime the session
// budget must match the budget the workers were started with
// (fuseme-worker -cache-bytes) for hit accounting to line up. Default 0, or
// FUSEME_CACHE_BYTES.
func WithBlockCache(bytes int64) Option {
	return func(s *Session) error {
		if bytes < 0 {
			return fmt.Errorf("fuseme: BlockCache budget = %d, must be >= 0", bytes)
		}
		s.cacheBytes = bytes
		return nil
	}
}

// WithKernelThreads sets how many goroutines one task's kernels (matmul
// row-panels, element-wise chains) may fan out across. n == 0 restores
// auto-sizing: min(4, cores/slots), a wall-clock-only speedup that leaves the
// simulated cost model untouched. An explicit n > 1 additionally scales the
// modelled compute bandwidth B̂c by n, so plan costs and the chosen (P,Q,R)
// reflect the parallelism. Keep n x TasksPerNode at or below the machine's
// core count — oversubscription degrades every task (see internal/parallel).
// Default: the ClusterConfig.KernelThreads field, or FUSEME_KERNEL_THREADS.
func WithKernelThreads(n int) Option {
	return func(s *Session) error {
		if n < 0 {
			return fmt.Errorf("fuseme: KernelThreads = %d, must be >= 0", n)
		}
		s.kernelThreads = n
		return nil
	}
}

// WithPipelining turns pipelined stage execution on or off (default on, or
// the ClusterConfig.DisablePipelining field). Pipelining overlaps each
// task's input transfer with the previous task's kernel (prefetch), folds
// partial aggregates as tasks complete instead of at a stage barrier, and
// lets idle TCP workers steal queued tasks from stragglers. Results are
// bit-identical either way — the driver folds partials in task-index order
// regardless — so turning it off only changes when bytes move, never what
// is computed.
func WithPipelining(on bool) Option {
	return func(s *Session) error {
		if on {
			s.pipelining = 1
		} else {
			s.pipelining = 0
		}
		return nil
	}
}

// WithPrefetchBytes sets the per-task prefetch admission budget: how many
// bytes of the next task's recorded inputs a worker may pull ahead while
// the current kernel runs. The budget is clamped to the per-task memory
// budget θt so prefetching never violates admission control. Must be
// positive — use WithPipelining(false) to disable pipelining wholesale.
// Default 64 MiB, or FUSEME_PREFETCH_BYTES.
func WithPrefetchBytes(bytes int64) Option {
	return func(s *Session) error {
		if bytes <= 0 {
			return fmt.Errorf("fuseme: PrefetchBytes = %d, must be positive", bytes)
		}
		s.prefetchBytes = bytes
		return nil
	}
}

// WithHeartbeat overrides the TCP runtime's worker heartbeat: how often the
// coordinator pings each worker and how long it waits for the reply. The
// timeout must exceed the interval. Defaults: 500ms / 2s, or the
// FUSEME_HEARTBEAT_INTERVAL / FUSEME_HEARTBEAT_TIMEOUT environment
// variables.
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(s *Session) error {
		s.rcfg.HeartbeatInterval = interval
		s.rcfg.HeartbeatTimeout = timeout
		return s.rcfg.Validate()
	}
}

// WithDialTimeout overrides the TCP runtime's worker connection timeout
// (default 5s, or FUSEME_DIAL_TIMEOUT).
func WithDialTimeout(d time.Duration) Option {
	return func(s *Session) error {
		s.rcfg.DialTimeout = d
		return s.rcfg.Validate()
	}
}

// WithCacheReplicas sets how many workers hold each hot cached block on the
// TCP runtime, including the primary. The default 1 disables replication
// (and keeps cache-hit accounting identical to the simulated backend);
// k > 1 pushes each newly cached loop-invariant block to k-1 secondary
// holders so a single worker loss no longer cold-starts the next iteration.
// Environment override: FUSEME_CACHE_REPLICAS.
func WithCacheReplicas(k int) Option {
	return func(s *Session) error {
		if k < 1 {
			return fmt.Errorf("fuseme: CacheReplicas = %d, must be >= 1", k)
		}
		s.rcfg.CacheReplicas = k
		return s.rcfg.Validate()
	}
}

// maxTaskRetries resolves the retry budget: option > environment > default.
func (s *Session) maxTaskRetries() (int, error) {
	if s.retries >= 0 {
		return s.retries, nil
	}
	if env := os.Getenv(EnvMaxTaskRetries); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("fuseme: %s=%q: want a non-negative integer", EnvMaxTaskRetries, env)
		}
		return n, nil
	}
	return defaultMaxTaskRetries, nil
}

// blockCacheBytes resolves the cache budget: option > environment > disabled.
func (s *Session) blockCacheBytes() (int64, error) {
	if s.cacheBytes >= 0 {
		return s.cacheBytes, nil
	}
	if env := os.Getenv(EnvCacheBytes); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("fuseme: %s=%q: want a non-negative byte count", EnvCacheBytes, env)
		}
		return n, nil
	}
	return 0, nil
}

// prefetchBytesSetting resolves the prefetch budget: option > environment >
// ClusterConfig field (whose zero means the built-in default).
func (s *Session) prefetchBytesSetting() (int64, error) {
	if s.prefetchBytes > 0 {
		return s.prefetchBytes, nil
	}
	if env := os.Getenv(EnvPrefetchBytes); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("fuseme: %s=%q: want a byte count (negative disables prefetch)", EnvPrefetchBytes, env)
		}
		return n, nil
	}
	return s.cfg.PrefetchBytes, nil
}

// kernelThreadsSetting resolves the intra-task thread count: option >
// environment > ClusterConfig field (which defaults to zero = auto).
func (s *Session) kernelThreadsSetting() (int, error) {
	if s.kernelThreads >= 0 {
		return s.kernelThreads, nil
	}
	if env := os.Getenv(EnvKernelThreads); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("fuseme: %s=%q: want a non-negative integer", EnvKernelThreads, env)
		}
		return n, nil
	}
	return s.cfg.KernelThreads, nil
}

// remoteConfig resolves the TCP transport tuning: environment overrides
// first, then explicit session options on top.
func (s *Session) remoteConfig() (remote.Config, error) {
	cfg, err := remote.DefaultConfig().FromEnv()
	if err != nil {
		return cfg, err
	}
	if s.rcfg.HeartbeatInterval != 0 {
		cfg.HeartbeatInterval = s.rcfg.HeartbeatInterval
	}
	if s.rcfg.HeartbeatTimeout != 0 {
		cfg.HeartbeatTimeout = s.rcfg.HeartbeatTimeout
	}
	if s.rcfg.DialTimeout != 0 {
		cfg.DialTimeout = s.rcfg.DialTimeout
	}
	if s.rcfg.CacheReplicas != 0 {
		cfg.CacheReplicas = s.rcfg.CacheReplicas
	}
	return cfg, cfg.Validate()
}

// startMetricsServer starts the /metrics + /debug/stats endpoint if
// WithMetricsAddr was given. The stats closure reads the runtime lazily so
// the endpoint serves live counters mid-query.
func (s *Session) startMetricsServer() error {
	if s.metricsAddr == "" || s.metricsSrv != nil {
		return nil
	}
	srv, err := obs.ServeMetrics(s.metricsAddr, s.obs.Metrics, func() any {
		s.rtMu.Lock()
		rtm := s.rtm
		s.rtMu.Unlock()
		if rtm == nil {
			return nil
		}
		return rtm.Stats().View()
	})
	if err != nil {
		return fmt.Errorf("fuseme: metrics endpoint: %w", err)
	}
	s.metricsSrv = srv
	return nil
}

// MetricsAddr returns the bound address of the metrics endpoint, or "" when
// WithMetricsAddr was not used.
func (s *Session) MetricsAddr() string { return s.metricsSrv.Addr() }

// MetricsSnapshot returns the current values of every session metric. The
// registry must be enabled with WithMetrics or WithMetricsAddr.
func (s *Session) MetricsSnapshot() (obs.Snapshot, error) {
	if s.obs.Metrics == nil {
		return obs.Snapshot{}, errors.New("fuseme: metrics not enabled (use WithMetrics or WithMetricsAddr)")
	}
	return s.obs.Metrics.Snapshot(), nil
}

// WriteTrace exports the recorded spans as Chrome trace_event JSON, loadable
// in chrome://tracing or ui.perfetto.dev. Tracing must be enabled with
// WithTracing.
func (s *Session) WriteTrace(w io.Writer) error {
	if s.obs.Trace == nil {
		return errors.New("fuseme: tracing not enabled (use WithTracing)")
	}
	return s.obs.Trace.WriteChromeTrace(w)
}

// WriteTraceFile is WriteTrace to a file path.
func (s *Session) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Report renders the cost-model calibration report: every executed
// operator's predicted NetEst/ComEst/MemEst joined against its measured
// wire bytes, flops and stage time, with effective cluster bandwidths
// back-solved from the measurements. Accumulates across queries (iterative
// workloads aggregate per operator) until ResetObservations.
func (s *Session) Report() string {
	return s.CalibrationReport().String()
}

// CalibrationReport returns the structured form of Report. When the metrics
// registry is on, the report also carries the per-task latency distribution
// (count, p50/p95/p99, max) under TaskLatency.
func (s *Session) CalibrationReport() *obs.Report {
	rep := s.obs.Calib.Report(s.calibModel())
	if s.obs.Metrics != nil {
		if snap := s.obs.Metrics.Histogram(obs.MTaskSeconds).Snapshot(); snap.Count > 0 {
			rep.TaskLatency = &snap
		}
	}
	return rep
}

// calibModel is the cluster model calibration measurements are judged
// against: the configured constants with B̂c scaled by explicit kernel
// threads, matching what the planner used.
func (s *Session) calibModel() obs.ClusterModel {
	cc := s.cfg.internal()
	if kt, err := s.kernelThreadsSetting(); err == nil {
		cc.KernelThreads = kt
	}
	return obs.ClusterModel{
		Nodes:         s.cfg.Nodes,
		NetBandwidth:  s.cfg.NetBandwidth,
		CompBandwidth: cc.EffectiveCompBandwidth(),
	}
}

// ResetObservations clears accumulated spans, calibration records and metric
// counters (gauges keep their last value).
func (s *Session) ResetObservations() { s.obs.Reset() }

// ExplainCosts compiles a script and returns the physical plan description
// followed by each fused operator's predicted cost breakdown — the chosen
// (P,Q,R) with its network, computation and per-task memory terms under the
// same constants the compile priced with: calibration-learned bandwidths
// when a store covers the session's cluster shape (marked "learned" in the
// header), the configured constants otherwise. This is what
// `fuseme -explain` prints.
func (s *Session) ExplainCosts(script string) (string, error) {
	cq, err := s.compile(script)
	if err != nil {
		return "", err
	}
	cc := cq.rtm.Config()
	cc.LearnedNetBandwidth, cc.LearnedCompBandwidth = s.learnedBandwidths()
	return cq.pp.Describe() + cq.pp.DescribeCosts(cc), nil
}
