package fuseme

import (
	"errors"
	"fmt"
	"os"

	"fuseme/internal/block"
	"fuseme/internal/cluster"
	"fuseme/internal/core"
	"fuseme/internal/obs"
)

// EnvCalib names the calibration-store file (see WithCalibration). When set
// and no calibration option was given, the session opens (or creates) the
// store at this path and saves it on Close.
const EnvCalib = "FUSEME_CALIB"

// CalibrationStore holds learned effective cluster bandwidths (B̂n/B̂c) keyed
// by cluster shape — worker count, block size, kernel threads. Sessions
// attached to a store (WithCalibration / WithCalibrationStore) both consult
// it when costing candidate plans and feed it online: every executed stage's
// measured wall time is back-solved into an effective bandwidth sample under
// the paper's Eq. 2 and folded into the entry for the session's shape.
//
// Share one store across sessions (and across the serve daemon's tenants):
// entries are per-shape, so sessions on different cluster configurations
// never pollute each other. Safe for concurrent use.
type CalibrationStore struct {
	s *obs.CalibStore
}

// NewCalibrationStore creates an empty in-memory store (Save is a no-op;
// use SaveTo or OpenCalibrationStore for persistence).
func NewCalibrationStore() *CalibrationStore {
	return &CalibrationStore{s: obs.NewCalibStore()}
}

// OpenCalibrationStore opens the store persisted at path, creating an empty
// one when the file does not exist yet. Save writes back to the same path.
func OpenCalibrationStore(path string) (*CalibrationStore, error) {
	s, err := obs.OpenCalibStore(path)
	if err != nil {
		return nil, err
	}
	return &CalibrationStore{s: s}, nil
}

// Save persists the store to the path it was opened with.
func (c *CalibrationStore) Save() error { return c.s.Save() }

// SaveTo persists the store to an explicit path.
func (c *CalibrationStore) SaveTo(path string) error { return c.s.SaveTo(path) }

// Generation returns the store's generation counter. It advances only when
// a learned bandwidth moves materially (>10%) or the store is rotated, and
// it is stamped into every attached session's plan-cache keys — so compiled
// plans are invalidated exactly when the cost model meaningfully changed.
func (c *CalibrationStore) Generation() uint64 { return c.s.Generation() }

// Len returns the number of cluster shapes with learned entries.
func (c *CalibrationStore) Len() int { return c.s.Len() }

// Rotate discards every learned entry and advances the generation. Use it
// after a topology change (new NICs, different hardware, moved racks): the
// old entries describe a cluster that no longer exists, and the generation
// bump re-keys every compiled plan costed under them.
func (c *CalibrationStore) Rotate() { c.s.Rotate() }

// WarmFromFlightFile folds a flight-recorder file (WithFlightRecorder /
// -flight-out) into the store under cfg's cluster shape, so the very first
// plan of the next session is costed with learned bandwidths instead of the
// configured constants. Returns how many stage records contributed a sample.
func (c *CalibrationStore) WarmFromFlightFile(path string, cfg ClusterConfig) (int, error) {
	recs, err := obs.ReadFlightFile(path)
	if err != nil {
		return 0, err
	}
	cc := cfg.internal()
	return c.s.UpdateFromFlight(calibKeyFor(cfg), obs.ClusterModel{
		Nodes:         cfg.Nodes,
		NetBandwidth:  cfg.NetBandwidth,
		CompBandwidth: cc.EffectiveCompBandwidth(),
	}, recs), nil
}

// calibKeyFor derives the store key from a cluster configuration.
func calibKeyFor(cfg ClusterConfig) obs.CalibKey {
	return obs.CalibKey{Workers: cfg.Nodes, BlockSize: cfg.BlockSize, KernelThreads: cfg.KernelThreads}
}

// WithCalibration attaches a persisted calibration store at path: the file
// is opened (or created) at session construction, consulted when costing
// every plan, updated online as stages complete, and saved on Session.Close.
// Environment fallback: FUSEME_CALIB.
func WithCalibration(path string) Option {
	return func(s *Session) error {
		if path == "" {
			return errors.New("fuseme: WithCalibration(\"\")")
		}
		if s.calibStore != nil {
			return errors.New("fuseme: calibration store already configured")
		}
		cs, err := OpenCalibrationStore(path)
		if err != nil {
			return err
		}
		s.calibStore = cs.s
		s.calibOwned = true
		return nil
	}
}

// WithCalibrationStore attaches a shared calibration store (the serve daemon
// attaches one per cluster, shared across tenants). The caller owns
// persistence: Session.Close does not save a shared store.
func WithCalibrationStore(cs *CalibrationStore) Option {
	return func(s *Session) error {
		if cs == nil {
			return errors.New("fuseme: WithCalibrationStore(nil)")
		}
		if s.calibStore != nil {
			return errors.New("fuseme: calibration store already configured")
		}
		s.calibStore = cs.s
		return nil
	}
}

// WithReplan enables feedback-directed re-planning between queries: before
// each execution the session compares the previous query's measured stage
// times against their predictions and, when they diverge beyond the default
// threshold, re-picks eligible operators' cuboid partitioning with learned
// bandwidths (when a store is attached) and the current block-cache
// residency. Swaps are constrained to the bit-safe parameter space — R stays
// pinned and aggregation-rooted operators are never touched — so results
// are bit-identical with re-planning on or off. Iterative library runners
// (internal/workloads) re-plan at iteration boundaries the same way.
func WithReplan(on bool) Option {
	return func(s *Session) error {
		if on {
			s.replan = 1
		} else {
			s.replan = 0
		}
		return nil
	}
}

// resolveCalibration finishes calibration setup after options ran: the
// FUSEME_CALIB fallback, the online learner, and the session replanner.
func (s *Session) resolveCalibration() error {
	if s.calibStore == nil {
		if path := os.Getenv(EnvCalib); path != "" {
			cs, err := obs.OpenCalibStore(path)
			if err != nil {
				return fmt.Errorf("fuseme: %s: %w", EnvCalib, err)
			}
			s.calibStore = cs
			s.calibOwned = true
		}
	}
	if s.calibStore != nil {
		key, err := s.calibKey()
		if err != nil {
			return err
		}
		s.obs.Learn = &obs.Learner{Store: s.calibStore, Key: key, Model: s.calibModel()}
	}
	if s.replan == 1 {
		s.replanner = &core.Replanner{Obs: s.obs, Learn: s.obs.Learn}
	}
	return nil
}

// calibKey is the session's calibration-store key: its cluster shape with
// the kernel-thread count resolved (option > env > config).
func (s *Session) calibKey() (obs.CalibKey, error) {
	kt, err := s.kernelThreadsSetting()
	if err != nil {
		return obs.CalibKey{}, err
	}
	return obs.CalibKey{Workers: s.cfg.Nodes, BlockSize: s.cfg.BlockSize, KernelThreads: kt}, nil
}

// learnedBandwidths returns the calibration store's learned B̂n/B̂c for the
// session's cluster shape (zero when no store is attached or no entry
// covers the shape). The values feed cluster.Config.LearnedNetBandwidth /
// LearnedCompBandwidth — plan costing only; the simulated execution clock
// keeps the configured constants, so learning never feeds back into its own
// measurements.
func (s *Session) learnedBandwidths() (netBW, compBW float64) {
	if s.calibStore == nil {
		return 0, 0
	}
	key, err := s.calibKey()
	if err != nil {
		return 0, 0
	}
	if l, ok := s.calibStore.Lookup(key); ok {
		return l.NetBW, l.CompBW
	}
	return 0, 0
}

// residentNames returns the plan-input names whose bound matrices the
// worker block caches still hold from the previous query: the binding's
// content epoch was already fed to the last execution (epochs are globally
// unique and restamped on every mutation, so an unchanged epoch means
// unchanged blocks — the same keying the cache itself uses). Nil when the
// cluster runs no block cache.
func (s *Session) residentNames(rtm interface{ Config() cluster.Config }, needed map[string]*block.Matrix) map[string]bool {
	if rtm.Config().CacheBytes <= 0 || len(s.lastEpochs) == 0 {
		return nil
	}
	var res map[string]bool
	for name, m := range needed {
		if m != nil && s.lastEpochs[m.Epoch()] {
			if res == nil {
				res = map[string]bool{}
			}
			res[name] = true
		}
	}
	return res
}

// snapshotEpochs records which input content epochs this query consumed,
// for the next query's residency check.
func (s *Session) snapshotEpochs(needed map[string]*block.Matrix) {
	if s.replanner == nil {
		return
	}
	set := make(map[uint64]bool, len(needed))
	for _, m := range needed {
		if m != nil {
			set[m.Epoch()] = true
		}
	}
	s.lastEpochs = set
}

// CalibrationGeneration returns the attached store's generation counter, or
// zero when no store is attached.
func (s *Session) CalibrationGeneration() uint64 {
	return s.calibStore.Generation()
}

// ReplanStats reports the session replanner's counters: boundary checks
// performed, checks that swapped at least one operator, and the divergence
// ratio at the last check. All zero when WithReplan is off.
func (s *Session) ReplanStats() (checks, replans int, lastDivergence float64) {
	if s.replanner == nil {
		return 0, 0, 0
	}
	return s.replanner.Checks, s.replanner.Replans, s.replanner.LastDivergence
}
