// Command fuseme-bench regenerates the tables and figures of the FuseME
// paper's evaluation (Section 6) on the simulated cluster.
//
// Usage:
//
//	fuseme-bench -exp all
//	fuseme-bench -exp fig12a
//	fuseme-bench -exp fig14 -scale 0.1
//	fuseme-bench -exp cache -out BENCH_cache.json
//	fuseme-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fuseme/internal/experiments"
	"fuseme/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (see -list)")
	scale := flag.Float64("scale", 1, "dimension scale factor in (0,1]")
	nodes := flag.Int("nodes", 0, "override worker node count (default: paper's 8)")
	runtime := flag.String("runtime", "sim", "execution backend; experiments model the paper's cluster, so only sim is valid")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the bench run (per-experiment spans; stage/task detail for real executions)")
	flightOut := flag.String("flight-out", "", "write a JSONL flight record of the bench run (one line per executed stage: predicted vs measured)")
	out := flag.String("out", "", "write a report-producing experiment's JSON document to this file (cache -> BENCH_cache.json, kernels -> BENCH_kernels.json, serve -> BENCH_serve.json)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *runtime != "sim" {
		fmt.Fprintf(os.Stderr, "fuseme-bench: -runtime=%s is not supported: the experiments reproduce the paper's "+
			"simulated 8-node cluster (Eq. 2 time model); use cmd/fuseme or the examples with -runtime=tcp for "+
			"real distributed execution\n", *runtime)
		os.Exit(2)
	}

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "), "all")
		return
	}
	opts := experiments.Options{Scale: *scale, Nodes: *nodes, ReportOut: *out}
	if *traceOut != "" || *flightOut != "" {
		opts.Obs = &obs.Obs{}
		if *traceOut != "" {
			opts.Obs.Trace = obs.NewRecorder()
		}
		if *flightOut != "" {
			// Flight records join measurements against predictions, so the
			// calibration store must be live too.
			opts.Obs.Calib = obs.NewCalibration()
			fr, ferr := obs.OpenFlightRecorder(*flightOut)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "fuseme-bench:", ferr)
				os.Exit(1)
			}
			opts.Obs.Flight = fr
		}
	}
	tables, err := experiments.Run(*exp, opts)
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if *traceOut != "" {
		if werr := writeTrace(*traceOut, opts.Obs.Trace); werr != nil {
			fmt.Fprintln(os.Stderr, "fuseme-bench:", werr)
			os.Exit(1)
		}
		fmt.Println("trace:", *traceOut)
	}
	if *flightOut != "" {
		if werr := opts.Obs.Flight.Close(); werr != nil {
			fmt.Fprintln(os.Stderr, "fuseme-bench:", werr)
			os.Exit(1)
		}
		fmt.Println("flight:", *flightOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuseme-bench:", err)
		os.Exit(1)
	}
}

func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
