// Command fuseme-bench regenerates the tables and figures of the FuseME
// paper's evaluation (Section 6) on the simulated cluster.
//
// Usage:
//
//	fuseme-bench -exp all
//	fuseme-bench -exp fig12a
//	fuseme-bench -exp fig14 -scale 0.1
//	fuseme-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fuseme/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (see -list)")
	scale := flag.Float64("scale", 1, "dimension scale factor in (0,1]")
	nodes := flag.Int("nodes", 0, "override worker node count (default: paper's 8)")
	runtime := flag.String("runtime", "sim", "execution backend; experiments model the paper's cluster, so only sim is valid")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *runtime != "sim" {
		fmt.Fprintf(os.Stderr, "fuseme-bench: -runtime=%s is not supported: the experiments reproduce the paper's "+
			"simulated 8-node cluster (Eq. 2 time model); use cmd/fuseme or the examples with -runtime=tcp for "+
			"real distributed execution\n", *runtime)
		os.Exit(2)
	}

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "), "all")
		return
	}
	tables, err := experiments.Run(*exp, experiments.Options{Scale: *scale, Nodes: *nodes})
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuseme-bench:", err)
		os.Exit(1)
	}
}
