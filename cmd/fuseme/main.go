// Command fuseme runs matrix queries on the FuseME engine (or any of the
// comparison engines) from the command line.
//
// Inputs are declared as name:ROWSxCOLS[:density] and filled with
// deterministic uniform-random data:
//
//	fuseme -in X:4000x4000:0.01 -in U:4000x100 -in V:4000x100 \
//	       -e 'O = X * log(U %*% t(V) + 1e-3)'
//
// Use -plan to print the physical plan (fused operators, strategies and
// (P,Q,R) parameters) instead of executing, -sim to dry-run the query at
// full scale on the paper's 8-node cluster, and -engine to switch between
// fuseme, systemds, distme, matfast and tensorflow.
//
// Observability: -explain prints each operator's predicted cost terms
// before executing, -trace-out FILE exports a Chrome trace of the run (a
// single merged cluster timeline under -runtime=tcp), -flight-out FILE
// appends one JSON line per executed stage (predicted vs measured),
// -metrics-addr HOST:PORT serves /metrics, /debug/stats and /debug/pprof/
// during it, and -report prints the cost-model calibration (predicted vs
// measured, with back-solved effective bandwidths) afterwards.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"fuseme"
)

type inputFlag []string

func (f *inputFlag) String() string     { return strings.Join(*f, ",") }
func (f *inputFlag) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fuseme:", err)
		os.Exit(1)
	}
}

func run() error {
	var inputs inputFlag
	expr := flag.String("e", "", "query script (alternatively -f)")
	file := flag.String("f", "", "file containing the query script")
	engine := flag.String("engine", "fuseme", "engine: fuseme|systemds|distme|matfast|tensorflow")
	plan := flag.Bool("plan", false, "print the physical plan instead of executing")
	sim := flag.Bool("sim", false, "simulate at full scale on the paper's cluster (no data materialised)")
	blockSize := flag.Int("block", 64, "block size for real execution")
	runtime := flag.String("runtime", "sim", "execution backend: sim (in-process) or tcp (fuseme-worker processes)")
	workers := flag.String("workers", "", "comma-separated worker addresses for -runtime=tcp (default: $FUSEME_WORKERS)")
	joinAddr := flag.String("join-addr", "", "with -runtime=tcp, serve a join listener on this address so additional fuseme-worker -join processes can enroll mid-run (port 0 = ephemeral)")
	seed := flag.Int64("seed", 42, "random seed for generated inputs")
	verbose := flag.Bool("v", false, "print result matrices (small outputs only)")
	explain := flag.Bool("explain", false, "print each operator's (P,Q,R) and predicted memory/net/comp terms before executing")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file of the execution (load in chrome://tracing)")
	flightOut := flag.String("flight-out", "", "write a JSONL flight record (one line per stage: predicted vs measured) to this file")
	journalOut := flag.String("journal-out", "", "write the query event journal (planned/stage/done lifecycle, JSONL) to this file (default: $FUSEME_JOURNAL)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and JSON /debug/stats on this address during the run")
	report := flag.Bool("report", false, "print the cost-model calibration report (predicted vs measured, back-solved bandwidths) after executing")
	calib := flag.String("calib", "", "calibration-store file: learned effective bandwidths consulted at plan time, updated by this run, saved on exit (default: $FUSEME_CALIB)")
	replan := flag.Bool("replan", false, "re-pick cuboid partitioning between queries when measured stage times diverge from predictions (bit-identical results)")
	flag.Var(&inputs, "in", "input declaration name:ROWSxCOLS[:density]; repeatable")
	flag.Parse()

	script := *expr
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		script = string(b)
	}
	if script == "" {
		return fmt.Errorf("no query: use -e or -f")
	}

	if *sim {
		return simulate(script, inputs, *engine)
	}

	cfg := fuseme.LocalClusterConfig()
	cfg.BlockSize = *blockSize
	cfg.Runtime = *runtime
	if *workers != "" {
		cfg.Workers = strings.Split(*workers, ",")
	}
	var opts []fuseme.Option
	if *traceOut != "" {
		opts = append(opts, fuseme.WithTracing())
	}
	if *flightOut != "" {
		opts = append(opts, fuseme.WithFlightRecorder(*flightOut))
	}
	if *journalOut != "" {
		opts = append(opts, fuseme.WithJournalFile(*journalOut))
	}
	if *metricsAddr != "" {
		opts = append(opts, fuseme.WithMetricsAddr(*metricsAddr))
	}
	if *calib != "" {
		opts = append(opts, fuseme.WithCalibration(*calib))
	}
	if *replan {
		opts = append(opts, fuseme.WithReplan(true))
	}
	sess, err := fuseme.NewSession(cfg, opts...)
	if err != nil {
		return err
	}
	defer sess.Close()
	if *metricsAddr != "" {
		fmt.Println("metrics: http://" + sess.MetricsAddr() + "/metrics")
	}
	if err := sess.SetEngine(fuseme.Engine(*engine)); err != nil {
		return err
	}
	if *joinAddr != "" {
		bound, err := sess.ServeJoin(*joinAddr)
		if err != nil {
			return err
		}
		fmt.Println("join listener:", bound)
	}
	for i, in := range inputs {
		name, rows, cols, density, err := parseInput(in)
		if err != nil {
			return err
		}
		if density < 1 {
			sess.RandomSparse(name, rows, cols, density, 1, 5, *seed+int64(i))
		} else {
			sess.RandomDense(name, rows, cols, 0, 1, *seed+int64(i))
		}
	}
	if *plan {
		desc, err := sess.Explain(script)
		if err != nil {
			return err
		}
		fmt.Print(desc)
		return nil
	}
	if *explain {
		desc, err := sess.ExplainCosts(script)
		if err != nil {
			return err
		}
		fmt.Print(desc)
	}
	out, err := sess.Query(script)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := out[n]
		r, c := m.Dims()
		fmt.Printf("%s: %dx%d, nnz=%d, density=%.4g\n", n, r, c, m.NNZ(), m.Density())
		if *verbose && r*c <= 64 {
			vals := m.Dense()
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					fmt.Printf("%9.4f ", vals[i*c+j])
				}
				fmt.Println()
			}
		}
	}
	fmt.Println("stats:", sess.LastStats())
	if *report {
		fmt.Print(sess.Report())
	}
	if *traceOut != "" {
		if err := sess.WriteTraceFile(*traceOut); err != nil {
			return err
		}
		fmt.Println("trace:", *traceOut)
	}
	if *flightOut != "" || *journalOut != "" {
		if err := sess.Close(); err != nil {
			return err
		}
		if *flightOut != "" {
			fmt.Println("flight:", *flightOut)
		}
		if *journalOut != "" {
			fmt.Println("journal:", *journalOut)
		}
	}
	return nil
}

func simulate(script string, inputs inputFlag, engine string) error {
	sess, err := fuseme.NewSession(fuseme.PaperClusterConfig())
	if err != nil {
		return err
	}
	if err := sess.SetEngine(fuseme.Engine(engine)); err != nil {
		return err
	}
	shapes := map[string]fuseme.Shape{}
	for _, in := range inputs {
		name, rows, cols, density, err := parseInput(in)
		if err != nil {
			return err
		}
		shapes[name] = fuseme.Shape{Rows: rows, Cols: cols, Density: density}
	}
	st, err := sess.Simulate(script, shapes)
	if err != nil {
		switch {
		case fuseme.IsOutOfMemory(err):
			fmt.Println("result: O.O.M.")
		case fuseme.IsTimeout(err):
			fmt.Println("result: T.O.")
		}
		return err
	}
	fmt.Println("simulated:", st)
	return nil
}

// parseInput parses name:ROWSxCOLS[:density].
func parseInput(s string) (name string, rows, cols int, density float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return "", 0, 0, 0, fmt.Errorf("bad input %q, want name:ROWSxCOLS[:density]", s)
	}
	name = parts[0]
	dims := strings.SplitN(strings.ToLower(parts[1]), "x", 2)
	if len(dims) != 2 {
		return "", 0, 0, 0, fmt.Errorf("bad dimensions in %q", s)
	}
	rows, err = strconv.Atoi(dims[0])
	if err == nil {
		cols, err = strconv.Atoi(dims[1])
	}
	if err != nil || rows <= 0 || cols <= 0 {
		return "", 0, 0, 0, fmt.Errorf("bad dimensions in %q", s)
	}
	density = 1
	if len(parts) == 3 {
		density, err = strconv.ParseFloat(parts[2], 64)
		if err != nil || density <= 0 || density > 1 {
			return "", 0, 0, 0, fmt.Errorf("bad density in %q", s)
		}
	}
	return name, rows, cols, density, nil
}
