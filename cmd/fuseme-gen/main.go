// Command fuseme-gen generates datasets for FuseME experiments: synthetic
// sparse/dense matrices or shape-faithful stand-ins for the paper's real
// datasets (Table 2), written either in the engine's binary format (.fme) or
// as row,col,value triplet text.
//
//	fuseme-gen -dataset netflix -scale 0.01 -o netflix.fme
//	fuseme-gen -rows 100000 -cols 100000 -density 0.001 -format triplets -o x.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fuseme/internal/block"
	"fuseme/internal/data"
	"fuseme/internal/matrix"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fuseme-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	dataset := flag.String("dataset", "", "real dataset shape: movielens|netflix|yahoomusic")
	scale := flag.Float64("scale", 1, "dimension scale factor in (0,1]")
	rows := flag.Int("rows", 0, "rows (synthetic mode)")
	cols := flag.Int("cols", 0, "cols (synthetic mode)")
	density := flag.Float64("density", 1, "density in (0,1] (synthetic mode)")
	blockSize := flag.Int("block", 1000, "block size")
	seed := flag.Int64("seed", 42, "random seed")
	format := flag.String("format", "fme", "output format: fme|triplets")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	var m *block.Matrix
	switch {
	case *dataset != "":
		var d data.Dataset
		switch strings.ToLower(*dataset) {
		case "movielens":
			d = data.MovieLens
		case "netflix":
			d = data.Netflix
		case "yahoomusic":
			d = data.YahooMusic
		default:
			return fmt.Errorf("unknown dataset %q", *dataset)
		}
		if *scale != 1 {
			d = d.Scaled(*scale)
		}
		fmt.Fprintf(os.Stderr, "generating %s: %dx%d, ~%d non-zeros\n", d.Name, d.Rows, d.Cols, d.NNZ)
		m = d.Generate(*blockSize, *seed)
	case *rows > 0 && *cols > 0:
		if *density <= 0 || *density > 1 {
			return fmt.Errorf("density must be in (0,1]")
		}
		if *density < 1 {
			m = block.RandomSparse(*rows, *cols, *blockSize, *density, 1, 5, *seed)
		} else {
			m = block.RandomDense(*rows, *cols, *blockSize, 0, 1, *seed)
		}
	default:
		return fmt.Errorf("specify -dataset or -rows/-cols")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "fme":
		return matrix.WriteTo(w, m.ToMat())
	case "triplets":
		return data.WriteTriplets(w, m)
	}
	return fmt.Errorf("unknown format %q", *format)
}
