// Command fuseme-serve runs the multi-tenant query service: one warm cluster
// (sim or TCP) accepting concurrent plan submissions over HTTP/JSON, with
// per-tenant admission control, weighted-fair task scheduling and a shared
// compiled-plan cache (see internal/serve).
//
// A minimal open (single-tenant) instance on the in-process cluster:
//
//	fuseme-serve -addr 127.0.0.1:8080
//
// A two-worker TCP instance with two authenticated tenants and a preloaded
// dataset:
//
//	fuseme-worker -addr 127.0.0.1:7070 -exit-on-disconnect &
//	fuseme-worker -addr 127.0.0.1:7071 -exit-on-disconnect &
//	fuseme-serve -runtime tcp -workers 127.0.0.1:7070,127.0.0.1:7071 \
//	    -tenants 'acme:s3cret:2,beta:hunter2:1' \
//	    -dataset 'X=sparse:4000x4000:0.01:1:5:42'
//
// Endpoints: POST /v1/query, GET /v1/queries (live + recent queries), GET
// /v1/queries/{id} (EXPLAIN ANALYZE-style per-stage introspection), GET
// /v1/status, GET /metrics (Prometheus), GET /debug/stats (JSON).
// SIGINT/SIGTERM drains in-flight plans (rejecting new submissions with 503)
// before exiting; -drain-timeout bounds the wait.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fuseme"
	"fuseme/internal/serve"
)

// stringsFlag collects a repeatable string flag.
type stringsFlag []string

func (f *stringsFlag) String() string     { return strings.Join(*f, ",") }
func (f *stringsFlag) Set(v string) error { *f = append(*f, v); return nil }

// Environment overrides (flags win).
const (
	// EnvTenants is the tenant table: name:token:weight[:quotaMB], comma
	// separated (see -tenants).
	EnvTenants = "FUSEME_TENANTS"
	// EnvBudgetBytes overrides the cluster memory budget carved into tenant
	// reservations.
	EnvBudgetBytes = "FUSEME_SERVE_BUDGET_BYTES"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "address the query API listens on")
	runtimeKind := flag.String("runtime", "sim", "execution backend: sim (in-process) or tcp (fuseme-worker processes)")
	workers := flag.String("workers", "", "comma-separated worker addresses for -runtime tcp (default FUSEME_WORKERS)")
	engine := flag.String("engine", "fuseme", "planning engine: fuseme, systemds, distme, matfast, tensorflow")
	nodes := flag.Int("nodes", 0, "cluster nodes (default 2, or the worker count under tcp)")
	tasksPerNode := flag.Int("tasks-per-node", 4, "concurrent tasks per node")
	blockSize := flag.Int("block-size", 64, "matrix block width/height")
	taskMem := flag.Int64("task-mem-bytes", 4<<30, "per-task memory budget θt in bytes")
	sessions := flag.Int("sessions", 8, "session pool size: max concurrently executing plans")
	budget := flag.Int64("budget-bytes", 0, "cluster memory budget carved into tenant reservations (default nodes x tasks x θt, or "+EnvBudgetBytes+")")
	queueDepth := flag.Int("queue-depth", 16, "per-tenant admission queue bound")
	queueWait := flag.Duration("queue-wait", 10*time.Second, "max time a queued submission waits for memory before 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight plans on shutdown")
	tenants := flag.String("tenants", "", "tenant table name:token:weight[:quotaMB],... (default "+EnvTenants+", or a single open tenant)")
	noPlanCache := flag.Bool("no-plan-cache", false, "disable the shared compiled-plan cache")
	calib := flag.String("calib", "", "calibration-store file shared across tenants: learned effective bandwidths consulted at plan time, updated online, saved on shutdown")
	journal := flag.String("journal", "", "sink the query event journal to this JSONL file (the in-memory ring behind /v1/queries is always on)")
	cacheBytes := flag.Int64("cache-bytes", 0, "per-worker block-cache budget for loop-invariant inputs (0 disables)")
	cacheReplicas := flag.Int("cache-replicas", 2, "workers holding each hot cached block under -runtime tcp, primary included (1 disables replication)")
	var datasets stringsFlag
	flag.Var(&datasets, "dataset", "preload a named dataset: name=dense:RxC:lo:hi:seed, name=sparse:RxC:density:lo:hi:seed or name=file:PATH (repeatable)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fuseme-serve:", err)
		os.Exit(1)
	}

	workerList := splitList(*workers)
	if len(workerList) == 0 {
		workerList = splitList(os.Getenv("FUSEME_WORKERS"))
	}
	n := *nodes
	if n == 0 {
		n = 2
		if *runtimeKind == "tcp" {
			n = len(workerList)
		}
	}
	ccfg := fuseme.ClusterConfig{
		Nodes:         n,
		TasksPerNode:  *tasksPerNode,
		TaskMemBytes:  *taskMem,
		NetBandwidth:  1e9,
		CompBandwidth: 50e9,
		BlockSize:     *blockSize,
		Runtime:       *runtimeKind,
		Workers:       workerList,
	}

	tenantSpec := *tenants
	if tenantSpec == "" {
		tenantSpec = os.Getenv(EnvTenants)
	}
	tenantList, err := serve.ParseTenants(tenantSpec)
	if err != nil {
		fail(err)
	}

	budgetBytes := *budget
	if budgetBytes == 0 {
		if env := os.Getenv(EnvBudgetBytes); env != "" {
			b, err := strconv.ParseInt(env, 10, 64)
			if err != nil || b < 1 {
				fail(fmt.Errorf("%s=%q: want a positive byte count", EnvBudgetBytes, env))
			}
			budgetBytes = b
		}
	}

	scfg := serve.Config{
		Cluster:     ccfg,
		Engine:      fuseme.Engine(*engine),
		Tenants:     tenantList,
		Sessions:    *sessions,
		BudgetBytes: budgetBytes,
		QueueDepth:  *queueDepth,
		QueueWait:   *queueWait,
	}
	if *noPlanCache {
		scfg.PlanCacheEntries = -1
	}
	scfg.CalibPath = *calib
	scfg.JournalPath = *journal
	if *cacheBytes > 0 {
		scfg.SessionOptions = append(scfg.SessionOptions, fuseme.WithBlockCache(*cacheBytes))
	}
	if *cacheReplicas != 1 && *runtimeKind == "tcp" {
		scfg.SessionOptions = append(scfg.SessionOptions, fuseme.WithCacheReplicas(*cacheReplicas))
	}
	srv, err := serve.New(scfg)
	if err != nil {
		fail(err)
	}
	for _, spec := range datasets {
		name, m, err := serve.ParseDataset(spec, *blockSize)
		if err != nil {
			fail(err)
		}
		srv.RegisterDataset(name, m)
		rows, cols := m.Dims()
		fmt.Printf("fuseme-serve dataset %s: %dx%d, %d bytes\n", name, rows, cols, m.SizeBytes())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("fuseme-serve listening on http://%s (runtime=%s, %d tenants, %d sessions)\n",
		*addr, *runtimeKind, max(1, len(tenantList)), *sessions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case s := <-sig:
		fmt.Printf("fuseme-serve: %v: draining (deadline %s)\n", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fuseme-serve: drain:", err)
		}
		cancel()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = httpSrv.Shutdown(shutCtx)
		shutCancel()
		fmt.Println("fuseme-serve: stopped")
	}
}

func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
