// Command fuseme-repl is an interactive shell for the FuseME engine: declare
// inputs, run queries, inspect plans and switch engines without recompiling.
//
//	$ fuseme-repl
//	fuseme> \gen X 4000x4000 0.01
//	fuseme> \gen U 4000x100
//	fuseme> \gen V 4000x100
//	fuseme> O = X * log(U %*% t(V) + 1e-3)
//	fuseme> \plan O = X * log(U %*% t(V) + 1e-3)
//	fuseme> \engine systemds
//	fuseme> \stats
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"fuseme"
)

const help = `commands:
  \gen NAME RxC [density]   bind a random matrix (sparse when density < 1)
  \load NAME PATH           bind a matrix from an .fme file
  \save NAME PATH           write a bound or computed matrix to an .fme file
  \engine NAME              switch engine: fuseme|systemds|distme|matfast|tensorflow
  \plan QUERY               show the physical plan for a query
  \stats                    metrics of the last executed query
  \ls                       list bound matrices
  \show NAME [n]            print the top-left n x n corner (default 8)
  \block N                  rebuild the session with block size N
  \help                     this text
  \quit                     exit
anything else is parsed as a query script; results are bound by name.`

type repl struct {
	sess      *fuseme.Session
	blockSize int
	bound     map[string]*fuseme.Matrix
}

func main() {
	r := &repl{blockSize: 64, bound: map[string]*fuseme.Matrix{}}
	if err := r.reset(); err != nil {
		fmt.Fprintln(os.Stderr, "fuseme-repl:", err)
		os.Exit(1)
	}
	fmt.Println("FuseME interactive shell — \\help for commands")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("fuseme> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == `\q` {
			return
		}
		if err := r.handle(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func (r *repl) reset() error {
	cfg := fuseme.LocalClusterConfig()
	cfg.BlockSize = r.blockSize
	sess, err := fuseme.NewSession(cfg)
	if err != nil {
		return err
	}
	r.sess = sess
	r.bound = map[string]*fuseme.Matrix{}
	return nil
}

func (r *repl) handle(line string) error {
	if !strings.HasPrefix(line, `\`) {
		return r.query(line)
	}
	fields := strings.Fields(line)
	switch fields[0] {
	case `\help`:
		fmt.Println(help)
	case `\gen`:
		if len(fields) < 3 {
			return fmt.Errorf(`usage: \gen NAME RxC [density]`)
		}
		return r.gen(fields[1], fields[2], fields[3:])
	case `\load`:
		if len(fields) != 3 {
			return fmt.Errorf(`usage: \load NAME PATH`)
		}
		m, err := r.sess.LoadMatrix(fields[1], fields[2])
		if err != nil {
			return err
		}
		r.bound[fields[1]] = m
		rr, cc := m.Dims()
		fmt.Printf("%s: %dx%d, nnz=%d\n", fields[1], rr, cc, m.NNZ())
	case `\save`:
		if len(fields) != 3 {
			return fmt.Errorf(`usage: \save NAME PATH`)
		}
		m, ok := r.bound[fields[1]]
		if !ok {
			return fmt.Errorf("no matrix %q", fields[1])
		}
		f, err := os.Create(fields[2])
		if err != nil {
			return err
		}
		defer f.Close()
		return m.Write(f)
	case `\engine`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \engine NAME`)
		}
		if err := r.sess.SetEngine(fuseme.Engine(fields[1])); err != nil {
			return err
		}
		fmt.Println("engine:", r.sess.EngineName())
	case `\plan`:
		script := strings.TrimSpace(strings.TrimPrefix(line, `\plan`))
		if script == "" {
			return fmt.Errorf(`usage: \plan QUERY`)
		}
		desc, err := r.sess.Explain(script)
		if err != nil {
			return err
		}
		fmt.Print(desc)
	case `\stats`:
		fmt.Println(r.sess.LastStats())
	case `\ls`:
		names := make([]string, 0, len(r.bound))
		for n := range r.bound {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			m := r.bound[n]
			rr, cc := m.Dims()
			fmt.Printf("%-12s %dx%d nnz=%d density=%.4g\n", n, rr, cc, m.NNZ(), m.Density())
		}
	case `\show`:
		if len(fields) < 2 {
			return fmt.Errorf(`usage: \show NAME [n]`)
		}
		m, ok := r.bound[fields[1]]
		if !ok {
			return fmt.Errorf("no matrix %q", fields[1])
		}
		n := 8
		if len(fields) == 3 {
			if v, err := strconv.Atoi(fields[2]); err == nil {
				n = v
			}
		}
		rr, cc := m.Dims()
		for i := 0; i < n && i < rr; i++ {
			for j := 0; j < n && j < cc; j++ {
				fmt.Printf("%9.4f ", m.At(i, j))
			}
			fmt.Println()
		}
	case `\block`:
		if len(fields) != 2 {
			return fmt.Errorf(`usage: \block N`)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil || v <= 0 {
			return fmt.Errorf("bad block size %q", fields[1])
		}
		r.blockSize = v
		fmt.Printf("block size %d; session reset (matrices cleared)\n", v)
		return r.reset()
	default:
		return fmt.Errorf("unknown command %s (\\help lists commands)", fields[0])
	}
	return nil
}

func (r *repl) gen(name, dims string, rest []string) error {
	parts := strings.SplitN(strings.ToLower(dims), "x", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad dimensions %q", dims)
	}
	rows, err1 := strconv.Atoi(parts[0])
	cols, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || rows <= 0 || cols <= 0 {
		return fmt.Errorf("bad dimensions %q", dims)
	}
	density := 1.0
	if len(rest) > 0 {
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad density %q", rest[0])
		}
		density = v
	}
	seed := int64(len(r.bound)) + 42
	var m *fuseme.Matrix
	if density < 1 {
		m = r.sess.RandomSparse(name, rows, cols, density, 1, 5, seed)
	} else {
		m = r.sess.RandomDense(name, rows, cols, 0, 1, seed)
	}
	r.bound[name] = m
	fmt.Printf("%s: %dx%d, nnz=%d\n", name, rows, cols, m.NNZ())
	return nil
}

func (r *repl) query(script string) error {
	out, err := r.sess.Query(script)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := out[n]
		r.sess.Bind(n, m)
		r.bound[n] = m
		rr, cc := m.Dims()
		if rr*cc == 1 {
			fmt.Printf("%s = %g\n", n, m.At(0, 0))
		} else {
			fmt.Printf("%s: %dx%d, nnz=%d\n", n, rr, cc, m.NNZ())
		}
	}
	fmt.Println(r.sess.LastStats())
	return nil
}
