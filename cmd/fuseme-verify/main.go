// Command fuseme-verify checks engine correctness end to end: it runs every
// paper workload on every engine at laptop scale with real arithmetic and
// compares the results against the single-node reference evaluator. A clean
// run prints one OK line per (workload, engine) pair and exits 0.
//
//	fuseme-verify            # all workloads, all engines
//	fuseme-verify -scale 2   # larger matrices (slower, more thorough)
package main

import (
	"flag"
	"fmt"
	"os"

	"fuseme/internal/block"
	"fuseme/internal/cluster"
	"fuseme/internal/core"
	"fuseme/internal/dag"
	"fuseme/internal/matrix"
	"fuseme/internal/ref"
	"fuseme/internal/workloads"
)

type verifyCase struct {
	name  string
	graph *dag.Graph
	flats map[string]matrix.Mat
}

func cases(scale int) []verifyCase {
	s := func(n int) int { return n * scale }
	return []verifyCase{
		{
			name:  "nmf-kernel",
			graph: workloads.NMFKernel(s(120), s(100), s(12), 0.03),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomSparse(s(120), s(100), 0.03, 1, 5, 1),
				"U": matrix.RandomDense(s(120), s(12), 0.5, 1.5, 2),
				"V": matrix.RandomDense(s(100), s(12), 0.5, 1.5, 3),
			},
		},
		{
			name:  "gnmf",
			graph: workloads.GNMF(s(60), s(50), s(6), 0.4),
			flats: map[string]matrix.Mat{
				"X": matrix.ToDense(matrix.RandomSparse(s(60), s(50), 0.4, 0.5, 1.5, 4)),
				"U": matrix.RandomDense(s(6), s(50), 0.5, 1.5, 5),
				"V": matrix.RandomDense(s(60), s(6), 0.5, 1.5, 6),
			},
		},
		{
			name:  "als-loss",
			graph: workloads.ALSLoss(s(80), s(70), s(8), 0.05),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomSparse(s(80), s(70), 0.05, 1, 5, 7),
				"U": matrix.RandomDense(s(80), s(8), -0.5, 0.5, 8),
				"V": matrix.RandomDense(s(8), s(70), -0.5, 0.5, 9),
			},
		},
		{
			name:  "kl-divergence",
			graph: workloads.KLDivergence(s(60), s(50), s(6), 0.08),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomSparse(s(60), s(50), 0.08, 1, 5, 10),
				"U": matrix.RandomDense(s(60), s(6), 0.5, 1.5, 11),
				"V": matrix.RandomDense(s(6), s(50), 0.5, 1.5, 12),
			},
		},
		{
			name:  "pca",
			graph: workloads.PCA(s(90), s(40), 5),
			flats: map[string]matrix.Mat{
				"X": matrix.RandomDense(s(90), s(40), -1, 1, 13),
				"S": matrix.RandomDense(s(40), 5, -1, 1, 14),
			},
		},
		{
			name: "autoencoder-step",
			graph: workloads.AutoEncoderStep(workloads.AutoEncoderConfig{
				Features: s(24), Batch: 16, H1: s(8), H2: 4}),
			flats: map[string]matrix.Mat{
				"XT": matrix.RandomDense(s(24), 16, 0, 1, 15),
				"W1": matrix.RandomDense(s(8), s(24), -0.3, 0.3, 16),
				"b1": matrix.RandomDense(s(8), 1, -0.1, 0.1, 17),
				"W2": matrix.RandomDense(4, s(8), -0.3, 0.3, 18),
				"b2": matrix.RandomDense(4, 1, -0.1, 0.1, 19),
				"W3": matrix.RandomDense(s(8), 4, -0.3, 0.3, 20),
				"b3": matrix.RandomDense(s(8), 1, -0.1, 0.1, 21),
				"W4": matrix.RandomDense(s(24), s(8), -0.3, 0.3, 22),
				"b4": matrix.RandomDense(s(24), 1, -0.1, 0.1, 23),
			},
		},
	}
}

func main() {
	scale := flag.Int("scale", 1, "size multiplier for the verification matrices")
	blockSize := flag.Int("block", 16, "block size")
	flag.Parse()
	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "fuseme-verify: scale must be >= 1")
		os.Exit(2)
	}

	engines := []core.Engine{
		core.FuseME{}, core.FuseME{Balanced: true}, core.FuseME{NoMask: true},
		core.SystemDSSim{}, core.DistMESim{}, core.MatFastSim{}, core.TensorFlowSim{},
	}
	failures := 0
	for _, tc := range cases(*scale) {
		want, err := ref.Evaluate(tc.graph, tc.flats)
		if err != nil {
			fmt.Printf("FAIL %-18s reference: %v\n", tc.name, err)
			failures++
			continue
		}
		inputs := map[string]*block.Matrix{}
		for name, m := range tc.flats {
			inputs[name] = block.FromMat(m, *blockSize)
		}
		for _, e := range engines {
			cl := cluster.MustNew(cluster.Config{
				Nodes: 2, TasksPerNode: 4, TaskMemBytes: 8 << 30,
				NetBandwidth: 1e9, CompBandwidth: 50e9, BlockSize: *blockSize,
			})
			got, _, err := core.Run(e, tc.graph, cl, inputs)
			if err != nil {
				fmt.Printf("FAIL %-18s %-16s %v\n", tc.name, e.Name(), err)
				failures++
				continue
			}
			bad := ""
			for name, w := range want {
				if !matrix.EqualApprox(got[name].ToMat(), w, 1e-8) {
					bad = name
					break
				}
			}
			if bad != "" {
				fmt.Printf("FAIL %-18s %-16s output %q diverges from reference\n", tc.name, e.Name(), bad)
				failures++
				continue
			}
			s := cl.Stats()
			fmt.Printf("OK   %-18s %-16s comm=%s flops=%d stages=%d\n",
				tc.name, e.Name(), cluster.FormatBytes(s.TotalCommBytes()), s.Flops, s.Stages)
		}
	}
	if failures > 0 {
		fmt.Printf("%d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("all engines match the reference")
}
