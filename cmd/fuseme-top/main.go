// Command fuseme-top is a terminal dashboard for a running fuseme-serve
// instance: it polls GET /v1/queries (live and recent queries), GET /v1/status
// (tenants, sessions, scheduler) and the JSON metrics snapshot, and renders
// tenant latency quantiles (p50/p95/p99), stage skew and per-worker slowdown
// scores alongside the query table.
//
//	fuseme-top -addr 127.0.0.1:8080            # refresh every 2s
//	fuseme-top -addr 127.0.0.1:8080 -once      # print one frame and exit
//
// Pass -token when the service requires tenant authentication for the query
// API; the observability endpoints themselves are open.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"fuseme/internal/obs"
	"fuseme/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "fuseme-serve address (host:port)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print a single frame and exit")
	token := flag.String("token", "", "tenant token forwarded as X-FuseMe-Token")
	flag.Parse()

	c := &client{base: "http://" + *addr, token: *token, hc: &http.Client{Timeout: 10 * time.Second}}
	for {
		d, err := c.poll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuseme-top:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\033[H\033[2J") // clear screen, cursor home
		}
		render(os.Stdout, d)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// client fetches the three observability documents from a fuseme-serve
// instance.
type client struct {
	base  string
	token string
	hc    *http.Client
}

// dashboard is one polled frame.
type dashboard struct {
	At      time.Time
	Queries serve.QueryList
	Status  serve.Status
	Metrics obs.Snapshot
}

func (c *client) get(path string, accept string, v any) error {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if c.token != "" {
		req.Header.Set("X-FuseMe-Token", c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// poll fetches one dashboard frame.
func (c *client) poll() (dashboard, error) {
	d := dashboard{At: time.Now()}
	if err := c.get("/v1/queries", "", &d.Queries); err != nil {
		return d, err
	}
	if err := c.get("/v1/status", "", &d.Status); err != nil {
		return d, err
	}
	// /debug/stats embeds the same snapshot, but /metrics negotiates JSON
	// directly in serve's obs.ServeMetrics sibling; serve's own /metrics is
	// Prometheus-only, so take the snapshot from /debug/stats.
	var stats struct {
		Metrics obs.Snapshot `json:"metrics"`
	}
	if err := c.get("/debug/stats", "application/json", &stats); err != nil {
		return d, err
	}
	d.Metrics = stats.Metrics
	return d, nil
}

// series extracts the label value of one series of family, e.g.
// series(`fuseme_tenant_query_seconds{tenant="acme"}`, "fuseme_tenant_query_seconds")
// returns "acme", true.
func series(name, family string) (string, bool) {
	rest, ok := strings.CutPrefix(name, family+"{")
	if !ok {
		return "", false
	}
	rest = strings.TrimSuffix(rest, "\"}")
	if i := strings.IndexByte(rest, '"'); i >= 0 {
		return rest[i+1:], true
	}
	return "", false
}

// render writes one dashboard frame as fixed-width tables.
func render(w io.Writer, d dashboard) {
	st := d.Status
	fmt.Fprintf(w, "fuseme-top  %s  sessions %d/%d busy  running tasks %d",
		d.At.Format("15:04:05"), st.SessionsBusy, st.Sessions, st.RunningTasks)
	if st.Draining {
		fmt.Fprint(w, "  DRAINING")
	}
	fmt.Fprintln(w)

	// Tenants: admission counters plus end-to-end latency quantiles from the
	// per-tenant histograms.
	if len(st.Tenants) > 0 {
		fmt.Fprintln(w, "\nTENANT        QUERIES  ERR  REJ   QUEUE  p50      p95      p99")
		for _, t := range st.Tenants {
			h := d.Metrics.Histograms[obs.TenantSeries(obs.MTenantQuerySeconds, t.Name)]
			fmt.Fprintf(w, "%-12s %8d %4d %4d %7d  %-8s %-8s %-8s\n",
				t.Name, t.Queries, t.Errors, t.Rejects, t.QueueDepth,
				fmtSeconds(h.P50), fmtSeconds(h.P95), fmtSeconds(h.P99))
		}
	}

	// Stage skew and per-worker slowdown scores, when the detector has run.
	if skew, ok := d.Metrics.Gauges[obs.MStageSkew]; ok {
		fmt.Fprintf(w, "\nlast stage skew (max/median): %.2f\n", skew)
	}
	type slow struct {
		worker string
		score  float64
	}
	var slows []slow
	for name, v := range d.Metrics.Gauges {
		if wkr, ok := series(name, obs.MWorkerSlowdown); ok {
			slows = append(slows, slow{wkr, v})
		}
	}
	if len(slows) > 0 {
		sort.Slice(slows, func(i, j int) bool { return slows[i].worker < slows[j].worker })
		fmt.Fprint(w, "worker slowdown:")
		for _, s := range slows {
			mark := ""
			if s.score >= 1.5 {
				mark = " STRAGGLER"
			}
			fmt.Fprintf(w, "  w%s=%.2f%s", s.worker, s.score, mark)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\nID        TENANT       STATE     QUEUE     EXEC      HIT  SCRIPT")
	for _, q := range d.Queries.Live {
		renderQuery(w, q)
	}
	for _, q := range d.Queries.Recent {
		renderQuery(w, q)
	}
}

// renderQuery writes one query row.
func renderQuery(w io.Writer, q serve.QueryRecord) {
	hit := ""
	if q.PlanCacheHit {
		hit = "yes"
	}
	tail := strings.SplitN(q.Script, "\n", 2)[0]
	if len(tail) > 40 {
		tail = tail[:40] + "..."
	}
	if q.Error != "" {
		tail = "! " + q.Error
	}
	fmt.Fprintf(w, "%-9s %-12s %-9s %-9s %-9s %-4s %s\n",
		q.ID, q.Tenant, q.State,
		fmtSeconds(q.QueueMillis/1e3), fmtSeconds(q.ExecMillis/1e3), hit, tail)
}

// fmtSeconds renders a duration in adaptive units ("-" for zero).
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
