package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fuseme"
	"fuseme/internal/serve"
)

// TestPollAndRender runs one query through a live serve handler, polls the
// three observability documents like the CLI does, and checks the rendered
// frame mentions the query, its tenant and the latency quantile columns.
func TestPollAndRender(t *testing.T) {
	cc := fuseme.LocalClusterConfig()
	cc.BlockSize = 16
	srv, err := serve.New(serve.Config{
		Cluster: cc,
		Tenants: []serve.Tenant{{Name: "acme", Token: "s3cret", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := serve.QueryRequest{
		Script: "O = X %*% Y",
		Inputs: map[string]serve.InputSpec{
			"X": {Rows: 48, Cols: 32, Random: &serve.RandomSpec{Lo: 0, Hi: 1, Seed: 1}},
			"Y": {Rows: 32, Cols: 48, Random: &serve.RandomSpec{Lo: 0, Hi: 1, Seed: 2}},
		},
		OmitValues: true,
	}
	body, _ := json.Marshal(req)
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	hreq.Header.Set("X-FuseMe-Token", "s3cret")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}

	c := &client{base: ts.URL, token: "s3cret", hc: http.DefaultClient}
	d, err := c.poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Queries.Recent) != 1 || d.Queries.Recent[0].ID != "q-000001" {
		t.Fatalf("recent queries = %+v, want one record q-000001", d.Queries.Recent)
	}
	if d.Queries.Recent[0].State != "done" {
		t.Fatalf("state = %q, want done", d.Queries.Recent[0].State)
	}

	var out strings.Builder
	render(&out, d)
	frame := out.String()
	for _, want := range []string{"q-000001", "acme", "done", "TENANT", "p95"} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

// TestSeries checks the label extraction used to pick per-worker slowdown
// series out of the metrics snapshot.
func TestSeries(t *testing.T) {
	if v, ok := series(`fuseme_worker_slowdown{worker="3"}`, "fuseme_worker_slowdown"); !ok || v != "3" {
		t.Fatalf("series = %q, %v", v, ok)
	}
	if _, ok := series("fuseme_worker_slowdown", "fuseme_worker_slowdown"); ok {
		t.Fatal("bare family name should not match")
	}
	if _, ok := series(`fuseme_stage_skew{x="1"}`, "fuseme_worker_slowdown"); ok {
		t.Fatal("different family should not match")
	}
}

// TestFmtSeconds pins the adaptive duration formatting.
func TestFmtSeconds(t *testing.T) {
	cases := map[float64]string{0: "-", 0.0000005: "0µs", 0.0123: "12.3ms", 2.5: "2.50s"}
	for in, want := range cases {
		if got := fmtSeconds(in); got != want {
			t.Errorf("fmtSeconds(%g) = %q, want %q", in, got, want)
		}
	}
}
