// Command fuseme-worker runs one worker process of the TCP runtime backend.
// A coordinator (a session created with ClusterConfig.Runtime = "tcp", or
// the -runtime=tcp flag of cmd/fuseme and the examples) connects to the
// worker's address, ships stage task descriptors, serves the worker's input
// block fetches, and collects result blocks. Workers are stateless between
// tasks and can serve successive coordinators; kill them with SIGINT.
//
// Run a two-worker cluster on one machine:
//
//	fuseme-worker -addr 127.0.0.1:7070 &
//	fuseme-worker -addr 127.0.0.1:7071 &
//	FUSEME_WORKERS=127.0.0.1:7070,127.0.0.1:7071 gnmf -runtime tcp
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"fuseme/internal/obs"
	"fuseme/internal/rt/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "address to listen on (host:port; port 0 for ephemeral)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and JSON /debug/stats on this address")
	cacheBytes := flag.Int64("cache-bytes", -1, "block-cache budget in bytes for loop-invariant inputs (0 disables; default FUSEME_CACHE_BYTES or 0)")
	kernelThreads := flag.Int("kernel-threads", -1, "pin the intra-task kernel thread count on this worker (0 = auto-size against local cores; default FUSEME_KERNEL_THREADS or follow the coordinator)")
	exitOnDisconnect := flag.Bool("exit-on-disconnect", false, "exit cleanly when the last coordinator disconnects instead of lingering for successive coordinators (for clusters whose lifecycle is tied to one fuseme-serve instance)")
	joinAddr := flag.String("join", "", "coordinator join-listener address to register with; the worker re-registers with jittered exponential backoff whenever the coordinator is lost")
	drain := flag.Bool("drain", false, "on SIGTERM/SIGINT announce departure to the coordinator (-join), finish in-flight tasks (up to -drain-timeout), then exit")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long -drain waits for in-flight tasks to finish")
	steal := flag.Bool("steal", true, "volunteer for work-stealing: when this worker idles, the coordinator may route it tasks queued on stragglers (-steal=false pins this worker to its own queue)")
	flag.Parse()

	budget := *cacheBytes
	if budget < 0 {
		budget = 0
		if env := os.Getenv("FUSEME_CACHE_BYTES"); env != "" {
			n, err := strconv.ParseInt(env, 10, 64)
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "fuseme-worker: FUSEME_CACHE_BYTES=%q: want a non-negative byte count\n", env)
				os.Exit(1)
			}
			budget = n
		}
	}

	threads := *kernelThreads
	if threads < 0 {
		if env := os.Getenv("FUSEME_KERNEL_THREADS"); env != "" {
			n, err := strconv.Atoi(env)
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "fuseme-worker: FUSEME_KERNEL_THREADS=%q: want a non-negative integer\n", env)
				os.Exit(1)
			}
			threads = n
		}
	}

	w, err := remote.NewWorker(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuseme-worker:", err)
		os.Exit(1)
	}
	if budget > 0 {
		w.SetCacheBytes(budget)
		fmt.Println("fuseme-worker block cache:", budget, "bytes")
	}
	if threads >= 0 {
		w.SetKernelThreads(threads)
		fmt.Println("fuseme-worker kernel threads pinned to", threads)
	}
	if !*steal {
		w.SetSteal(false)
		fmt.Println("fuseme-worker work-stealing opt-out")
	}
	fmt.Println("fuseme-worker listening on", w.Addr())

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		w.SetObs(&obs.Obs{Metrics: reg})
		srv, err := obs.ServeMetrics(*metricsAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuseme-worker:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Println("fuseme-worker metrics on http://" + srv.Addr() + "/metrics")
	}

	stopJoin := make(chan struct{})
	if *joinAddr != "" {
		go joinLoop(*joinAddr, w, stopJoin)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *exitOnDisconnect {
		select {
		case <-sig:
		case <-w.CoordinatorGone():
			fmt.Println("fuseme-worker: coordinator closed, exiting")
		}
	} else {
		<-sig
	}
	close(stopJoin)
	if *drain {
		fmt.Println("fuseme-worker: draining")
		if *joinAddr != "" {
			if err := remote.Leave(*joinAddr, w.Addr(), 5*time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "fuseme-worker: leave %s: %v\n", *joinAddr, err)
			}
		}
		if w.Drain(*drainTimeout) {
			fmt.Println("fuseme-worker: drained, exiting")
		} else {
			fmt.Fprintf(os.Stderr, "fuseme-worker: drain timed out after %v (%d tasks still running)\n",
				*drainTimeout, w.ActiveTasks())
		}
	}
	w.Close()
	w.Wait()
}

// joinLoop registers the worker with the coordinator's join listener and
// re-registers — with jittered exponential backoff — every time the last
// coordinator control connection drops (coordinator crash or restart).
// Registration is idempotent on the coordinator side, so re-registering
// after a transient drop that the coordinator's own probe already healed is
// harmless.
func joinLoop(joinAddr string, w *remote.Worker, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	const (
		backoffBase = 200 * time.Millisecond
		backoffCap  = 30 * time.Second
	)
	for {
		delay := backoffBase
		for {
			members, err := remote.Register(joinAddr, w.Addr(), 5*time.Second)
			if err == nil {
				fmt.Printf("fuseme-worker: joined cluster via %s (%d members)\n", joinAddr, len(members))
				break
			}
			jitter := time.Duration(rng.Int63n(int64(delay/2) + 1))
			fmt.Fprintf(os.Stderr, "fuseme-worker: join %s: %v (retrying in %v)\n", joinAddr, err, delay+jitter)
			select {
			case <-time.After(delay + jitter):
			case <-stop:
				return
			}
			if delay *= 2; delay > backoffCap {
				delay = backoffCap
			}
		}
		select {
		case <-w.ControlDrop():
			fmt.Println("fuseme-worker: coordinator lost, re-registering")
		case <-stop:
			return
		}
	}
}
